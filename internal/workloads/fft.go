package workloads

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"primecache/internal/cache"
)

// StreamFFT is the stream id used by FFT references.
const StreamFFT = 4

// cview is a strided window over a complex array bound to word addresses:
// logical element t lives at data[off + t·stride] and occupies two words
// (re, im) starting at word base + 2·(off + t·stride). Loads and stores
// emit references for the first word of the pair (the paper's one-word
// line makes per-word emission equivalent for interference purposes).
type cview struct {
	data   []complex128
	off    int
	stride int
	base   uint64
	mem    Memory
}

func (v cview) get(t int) complex128 {
	idx := v.off + t*v.stride
	v.mem.Access(cache.Access{Addr: (v.base + uint64(idx)) * 8, Stream: StreamFFT})
	return v.data[idx]
}

func (v cview) set(t int, x complex128) {
	idx := v.off + t*v.stride
	v.mem.Access(cache.Access{Addr: (v.base + uint64(idx)) * 8, Write: true, Stream: StreamFFT})
	v.data[idx] = x
}

// fftInPlace runs an iterative radix-2 decimation-in-time FFT of length n
// (a power of two) over the view, emitting a reference per element touch.
// inverse selects the conjugate transform (unnormalised).
func fftInPlace(v cview, n int, inverse bool) {
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 1; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if i < j {
			a, b := v.get(i), v.get(j)
			v.set(i, b)
			v.set(j, a)
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for span := 1; span < n; span *= 2 {
		w := cmplx.Exp(complex(0, sign*math.Pi/float64(span)))
		for start := 0; start < n; start += 2 * span {
			tw := complex(1, 0)
			for k := 0; k < span; k++ {
				a := v.get(start + k)
				b := v.get(start+k+span) * tw
				v.set(start+k, a+b)
				v.set(start+k+span, a-b)
				tw *= w
			}
		}
	}
}

// FFT2D performs the paper's §4 blocked (four-step) FFT of x, viewed as a
// B2×B1 matrix stored column-major at word address baseWord:
//
//  1. B2 row FFTs of length B1 (stride-B2 accesses — the phase whose
//     conflicts the mapping scheme decides),
//  2. twiddle-factor multiplication,
//  3. B1 column FFTs of length B2 (unit stride).
//
// The result is the DFT of x in transposed order: X[k2 + B1·k1] ends up at
// x[k1 + B2·k2]. Every element reference is emitted into mem.
func FFT2D(x []complex128, b1, b2 int, baseWord uint64, mem Memory) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("workloads: FFT length must be a power of two, got %d", n)
	}
	if b1 <= 0 || b2 <= 0 || b1*b2 != n || b1&(b1-1) != 0 || b2&(b2-1) != 0 {
		return fmt.Errorf("workloads: need power-of-two B1·B2 = N, got %d·%d ≠ %d", b1, b2, n)
	}
	mm := sink(mem)
	// Step 1: row FFTs, stride B2.
	for r := 0; r < b2; r++ {
		fftInPlace(cview{data: x, off: r, stride: b2, base: baseWord, mem: mm}, b1, false)
	}
	// Step 2: twiddle factors ω_N^{r·k2}.
	for r := 0; r < b2; r++ {
		for k2 := 0; k2 < b1; k2++ {
			idx := r + k2*b2
			mm.Access(cache.Access{Addr: (baseWord + uint64(idx)) * 8, Stream: StreamFFT})
			w := cmplx.Exp(complex(0, -2*math.Pi*float64(r)*float64(k2)/float64(n)))
			x[idx] *= w
			mm.Access(cache.Access{Addr: (baseWord + uint64(idx)) * 8, Write: true, Stream: StreamFFT})
		}
	}
	// Step 3: column FFTs, unit stride.
	for k2 := 0; k2 < b1; k2++ {
		fftInPlace(cview{data: x, off: k2 * b2, stride: 1, base: baseWord, mem: mm}, b2, false)
	}
	return nil
}

// FFTReference computes the unnormalised DFT of x by recursion, for
// validating FFT2D.
func FFTReference(x []complex128) []complex128 {
	n := len(x)
	if n == 1 {
		return []complex128{x[0]}
	}
	even := make([]complex128, n/2)
	odd := make([]complex128, n/2)
	for i := 0; i < n/2; i++ {
		even[i], odd[i] = x[2*i], x[2*i+1]
	}
	fe, fo := FFTReference(even), FFTReference(odd)
	out := make([]complex128, n)
	for k := 0; k < n/2; k++ {
		tw := cmplx.Exp(complex(0, -2*math.Pi*float64(k)/float64(n)))
		out[k] = fe[k] + tw*fo[k]
		out[k+n/2] = fe[k] - tw*fo[k]
	}
	return out
}

// IFFTInPlace computes the unnormalised inverse DFT of x in place (unit
// stride), emitting references into mem. Divide by len(x) to invert
// FFTReference.
func IFFTInPlace(x []complex128, baseWord uint64, mem Memory) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("workloads: inverse FFT length must be a power of two, got %d", n)
	}
	fftInPlace(cview{data: x, off: 0, stride: 1, base: baseWord, mem: sink(mem)}, n, true)
	return nil
}

// FFTForwardInPlace is the forward counterpart of IFFTInPlace.
func FFTForwardInPlace(x []complex128, baseWord uint64, mem Memory) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("workloads: FFT length must be a power of two, got %d", n)
	}
	fftInPlace(cview{data: x, off: 0, stride: 1, base: baseWord, mem: sink(mem)}, n, false)
	return nil
}

// Convolve returns the circular convolution of x and h (equal power-of-two
// lengths) by the FFT method — forward transforms, pointwise product,
// inverse transform, 1/n scaling — tracing all three passes into mem. It
// is the signal-processing application the paper's FFT section motivates.
func Convolve(x, h []complex128, baseX, baseH uint64, mem Memory) ([]complex128, error) {
	n := len(x)
	if n == 0 || n != len(h) {
		return nil, fmt.Errorf("workloads: Convolve needs equal-length inputs, got %d and %d", n, len(h))
	}
	if n&(n-1) != 0 {
		return nil, fmt.Errorf("workloads: Convolve length must be a power of two, got %d", n)
	}
	mm := sink(mem)
	fx := make([]complex128, n)
	fh := make([]complex128, n)
	copy(fx, x)
	copy(fh, h)
	if err := FFTForwardInPlace(fx, baseX, mm); err != nil {
		return nil, err
	}
	if err := FFTForwardInPlace(fh, baseH, mm); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		mm.Access(cache.Access{Addr: (baseX + uint64(i)) * 8, Stream: StreamFFT})
		mm.Access(cache.Access{Addr: (baseH + uint64(i)) * 8, Stream: StreamFFT})
		fx[i] *= fh[i]
		mm.Access(cache.Access{Addr: (baseX + uint64(i)) * 8, Write: true, Stream: StreamFFT})
	}
	if err := IFFTInPlace(fx, baseX, mm); err != nil {
		return nil, err
	}
	scale := complex(1/float64(n), 0)
	for i := range fx {
		fx[i] *= scale
	}
	return fx, nil
}
