package workloads

import "fmt"

// BlockedMatMul computes c = a·b with b×b blocking (the algorithm of Lam,
// Rothberg & Wolf that the paper's §1 and §3.1 analyse), emitting every
// element reference into mem. The blocking factor blk is the sub-matrix
// edge; the paper's VCM models this workload as B = blk², R = blk.
func BlockedMatMul(a, b, c *Matrix, blk int, mem Memory) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("workloads: matmul shape mismatch %dx%d · %dx%d → %dx%d",
			a.Rows, a.Cols, b.Rows, b.Cols, c.Rows, c.Cols)
	}
	if blk <= 0 {
		return fmt.Errorf("workloads: blocking factor must be positive, got %d", blk)
	}
	mm := sink(mem)
	for jj := 0; jj < c.Cols; jj += blk {
		jmax := min(jj+blk, c.Cols)
		for kk := 0; kk < a.Cols; kk += blk {
			kmax := min(kk+blk, a.Cols)
			for ii := 0; ii < c.Rows; ii += blk {
				imax := min(ii+blk, c.Rows)
				for j := jj; j < jmax; j++ {
					for k := kk; k < kmax; k++ {
						// B(k,j) stays in a scalar register across the
						// column-segment sweep: one load.
						bkj := b.load(mm, StreamB, k, j)
						// c(ii:imax,j) += bkj · a(ii:imax,k): the
						// SAXPY-style double stream (load A segment,
						// load+store C segment).
						for i := ii; i < imax; i++ {
							aik := a.load(mm, StreamA, i, k)
							cij := c.load(mm, StreamC, i, j)
							c.store(mm, StreamC, i, j, cij+bkj*aik)
						}
					}
				}
			}
		}
	}
	return nil
}

// MatMulReference computes c = a·b naively, for validating the blocked
// kernel.
func MatMulReference(a, b, c *Matrix) error {
	if a.Cols != b.Rows || c.Rows != a.Rows || c.Cols != b.Cols {
		return fmt.Errorf("workloads: matmul shape mismatch")
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			c.Set(i, j, s)
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// GEMV computes y ← A·x + y, the level-2 BLAS kernel: a unit-stride
// column sweep of A per element of x (the SAXPY column formulation),
// emitting all references. Shapes: A is m×n, x has n elements, y has m.
func GEMV(a *Matrix, x, y *Vector, mem Memory) error {
	if len(x.Data) != a.Cols || len(y.Data) != a.Rows {
		return fmt.Errorf("workloads: GEMV shape mismatch %dx%d · %d → %d",
			a.Rows, a.Cols, len(x.Data), len(y.Data))
	}
	mm := sink(mem)
	for j := 0; j < a.Cols; j++ {
		xj := x.load(mm, StreamB, j)
		for i := 0; i < a.Rows; i++ {
			aij := a.load(mm, StreamA, i, j)
			yi := y.load(mm, StreamC, i)
			y.store(mm, StreamC, i, yi+aij*xj)
		}
	}
	return nil
}
