package workloads

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"primecache/internal/cache"
)

func TestForwardInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	x := make([]complex128, 256)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	y := make([]complex128, len(x))
	copy(y, x)
	if err := FFTForwardInPlace(y, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := IFFTInPlace(y, 0, nil); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		got := y[i] / complex(float64(len(x)), 0)
		if cmplx.Abs(got-x[i]) > 1e-9 {
			t.Fatalf("round trip x[%d] = %v, want %v", i, got, x[i])
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 64
	x := make([]complex128, n)
	h := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.Float64()*2-1, 0)
		h[i] = complex(rng.Float64()*2-1, 0)
	}
	got, err := Convolve(x, h, 0, 1<<16, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Direct circular convolution.
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += x[j] * h[(k-j+n)%n]
		}
		if cmplx.Abs(got[k]-want) > 1e-9*(1+cmplx.Abs(want)) {
			t.Fatalf("conv[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestConvolveErrors(t *testing.T) {
	x := make([]complex128, 8)
	if _, err := Convolve(x, make([]complex128, 4), 0, 0, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Convolve(make([]complex128, 6), make([]complex128, 6), 0, 0, nil); err == nil {
		t.Error("non-power-of-two accepted")
	}
	if _, err := Convolve(nil, nil, 0, 0, nil); err == nil {
		t.Error("empty accepted")
	}
	if err := IFFTInPlace(make([]complex128, 3), 0, nil); err == nil {
		t.Error("bad inverse length accepted")
	}
	if err := FFTForwardInPlace(make([]complex128, 3), 0, nil); err == nil {
		t.Error("bad forward length accepted")
	}
}

func TestConvolveTraced(t *testing.T) {
	const n = 1024
	x := make([]complex128, n)
	h := make([]complex128, n)
	for i := range x {
		x[i] = complex(float64(i%7), 0)
		h[i] = complex(float64(i%3), 0)
	}
	prime, _ := cache.NewPrime(13)
	if _, err := Convolve(x, h, 0, 100000, prime); err != nil { // base ≢ x's residues (powers of two collide mod 8191)
		t.Fatal(err)
	}
	s := prime.Stats()
	if s.Accesses == 0 {
		t.Fatal("no trace emitted")
	}
	// Unit-stride transforms over 2·1024 words fit the cache: conflicts 0.
	if s.Conflict != 0 {
		t.Errorf("conflicts = %d, want 0", s.Conflict)
	}
}
