package workloads

import (
	"fmt"

	"primecache/internal/cache"
)

// SAXPY computes y ← α·x + y over n elements with the given word strides,
// emitting the double-stream reference pattern (§3.1's prototypical vector
// operation: two loads, one buffered store per element). x and y start at
// word addresses baseX and baseY.
func SAXPY(alpha float64, x, y []float64, baseX, baseY uint64, strideX, strideY int64, n int, mem Memory) error {
	need := func(buf []float64, stride int64, count int) int {
		if count == 0 {
			return 0
		}
		return int(stride)*(count-1) + 1
	}
	if strideX <= 0 || strideY <= 0 {
		return fmt.Errorf("workloads: SAXPY strides must be positive, got %d and %d", strideX, strideY)
	}
	if len(x) < need(x, strideX, n) || len(y) < need(y, strideY, n) {
		return fmt.Errorf("workloads: SAXPY buffers too short for n=%d", n)
	}
	mm := sink(mem)
	for i := 0; i < n; i++ {
		ix, iy := int64(i)*strideX, int64(i)*strideY
		mm.Access(cache.Access{Addr: (baseX + uint64(ix)) * 8, Stream: StreamA})
		mm.Access(cache.Access{Addr: (baseY + uint64(iy)) * 8, Stream: StreamB})
		y[iy] = alpha*x[ix] + y[iy]
		mm.Access(cache.Access{Addr: (baseY + uint64(iy)) * 8, Write: true, Stream: StreamB})
	}
	return nil
}
