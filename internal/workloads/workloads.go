// Package workloads implements the blocked numerical kernels the paper's
// introduction motivates — blocked matrix multiply (Lam et al.), blocked LU
// decomposition, the two-dimensional blocked Cooley–Tukey FFT, and SAXPY —
// as real computations that additionally emit their memory reference
// streams into a cache simulator. Each kernel both produces numerically
// verifiable results and exercises exactly the access patterns (unit
// stride, large stride, sub-block, power-of-two FFT strides) whose cache
// behaviour the paper analyses.
package workloads

import (
	"primecache/internal/cache"
)

// Memory receives the kernels' memory references; *cache.Cache satisfies
// it. A nil Memory runs the kernel without tracing.
type Memory interface {
	Access(cache.Access) cache.Result
}

// nop drops references.
type nop struct{}

func (nop) Access(cache.Access) cache.Result { return cache.Result{} }

func sink(m Memory) Memory {
	if m == nil {
		return nop{}
	}
	return m
}

// Stream ids used by the kernels, so interference attribution can tell the
// operand matrices apart.
const (
	StreamA = 1
	StreamB = 2
	StreamC = 3
)

// Matrix is a column-major float64 matrix bound to a word address range,
// so element (i, j) has a definite memory address for tracing. LD is the
// leading dimension used for addressing; when it exceeds Rows the matrix
// models a Rows×Cols sub-block of a larger LD-row array (the §4 sub-block
// setting) while still storing only its own elements.
type Matrix struct {
	Rows, Cols int
	// LD is the addressing leading dimension, ≥ Rows.
	LD int
	// BaseWord is the word address of element (0, 0).
	BaseWord uint64
	Data     []float64
}

// NewMatrix allocates a rows×cols zero matrix based at baseWord with
// LD = rows (a self-contained array).
func NewMatrix(rows, cols int, baseWord uint64) *Matrix {
	return NewMatrixLD(rows, cols, rows, baseWord)
}

// NewMatrixLD allocates a rows×cols zero matrix addressed as a sub-block
// of an array with leading dimension ld ≥ rows.
func NewMatrixLD(rows, cols, ld int, baseWord uint64) *Matrix {
	if ld < rows {
		ld = rows
	}
	return &Matrix{Rows: rows, Cols: cols, LD: ld, BaseWord: baseWord, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i+j*m.Rows] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i+j*m.Rows] = v }

// WordAddr returns the word address of element (i, j) under column-major
// storage with leading dimension LD.
func (m *Matrix) WordAddr(i, j int) uint64 { return m.BaseWord + uint64(i+j*m.LD) }

// load emits a read of (i, j) and returns its value.
func (m *Matrix) load(mem Memory, stream, i, j int) float64 {
	mem.Access(cache.Access{Addr: m.WordAddr(i, j) * 8, Stream: stream})
	return m.At(i, j)
}

// store emits a write of (i, j).
func (m *Matrix) store(mem Memory, stream, i, j int, v float64) {
	mem.Access(cache.Access{Addr: m.WordAddr(i, j) * 8, Write: true, Stream: stream})
	m.Set(i, j, v)
}
