package workloads

import "fmt"

// Transpose computes b = aᵀ, emitting the classic transpose access
// pattern: unit-stride reads of a's columns against stride-LD writes of
// b's rows — one of the two streams is always strided, so a power-of-two
// leading dimension defeats a conventional cache no matter how the loop
// is oriented.
func Transpose(a, b *Matrix, mem Memory) error {
	if a.Rows != b.Cols || a.Cols != b.Rows {
		return fmt.Errorf("workloads: transpose shape mismatch %dx%d → %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	mm := sink(mem)
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			v := a.load(mm, StreamA, i, j)
			b.store(mm, StreamB, j, i, v)
		}
	}
	return nil
}

// BlockedTranspose is Transpose with blk×blk tiling, the standard
// cache-blocking of the kernel; tiles make both streams sub-block
// accesses, the §4 shape.
func BlockedTranspose(a, b *Matrix, blk int, mem Memory) error {
	if a.Rows != b.Cols || a.Cols != b.Rows {
		return fmt.Errorf("workloads: transpose shape mismatch %dx%d → %dx%d", a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if blk <= 0 {
		return fmt.Errorf("workloads: blocking factor must be positive, got %d", blk)
	}
	mm := sink(mem)
	for jj := 0; jj < a.Cols; jj += blk {
		jmax := min(jj+blk, a.Cols)
		for ii := 0; ii < a.Rows; ii += blk {
			imax := min(ii+blk, a.Rows)
			for j := jj; j < jmax; j++ {
				for i := ii; i < imax; i++ {
					v := a.load(mm, StreamA, i, j)
					b.store(mm, StreamB, j, i, v)
				}
			}
		}
	}
	return nil
}

// Stencil5 applies one Jacobi sweep of the 5-point stencil to the
// interior of src, writing dst: dst(i,j) = (src(i,j) + src(i±1,j) +
// src(i,j±1))/5. Column-major storage makes the (i,j±1) neighbours
// stride-LD accesses — three concurrent vector streams per column sweep,
// the multi-stream pattern of §3.1. Matrices must have equal shape.
func Stencil5(src, dst *Matrix, mem Memory) error {
	if src.Rows != dst.Rows || src.Cols != dst.Cols {
		return fmt.Errorf("workloads: stencil shape mismatch")
	}
	if src.Rows < 3 || src.Cols < 3 {
		return fmt.Errorf("workloads: stencil needs at least a 3x3 matrix")
	}
	mm := sink(mem)
	for j := 1; j < src.Cols-1; j++ {
		for i := 1; i < src.Rows-1; i++ {
			c := src.load(mm, StreamA, i, j)
			n := src.load(mm, StreamA, i-1, j)
			s := src.load(mm, StreamA, i+1, j)
			w := src.load(mm, StreamB, i, j-1)
			e := src.load(mm, StreamC, i, j+1)
			dst.store(mm, StreamC, i, j, (c+n+s+w+e)/5)
		}
	}
	return nil
}
