package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
)

// decodeJSON strictly decodes the request body into dst, rejecting
// unknown fields and trailing garbage.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// writeError maps an error to the structured {"error": {...}} body.
// Validation failures become 400s; timeouts 504s; everything else 500s.
func writeError(w http.ResponseWriter, err error) {
	var ae apiError
	switch {
	case errors.As(err, &ae):
	case errors.Is(err, context.DeadlineExceeded):
		ae = apiError{Code: http.StatusGatewayTimeout, Message: "request timed out"}
	case errors.Is(err, context.Canceled):
		ae = apiError{Code: 499, Message: "request cancelled"}
	case errors.Is(err, ErrPoolClosed):
		ae = apiError{Code: http.StatusServiceUnavailable, Message: "server shutting down"}
	default:
		ae = apiError{Code: http.StatusInternalServerError, Message: err.Error()}
	}
	writeJSON(w, ae.Code, map[string]apiError{"error": ae})
}

// computeJob evaluates one job through the memoizer and worker pool:
// memo hit → cached result; miss → compute on a pool worker, then store.
// Simulation panics (a config that slipped past validation) surface as
// errors, not a crashed worker.
func (s *Server) computeJob(ctx context.Context, job SweepJob) (result any, memoized bool, err error) {
	key := job.Key()
	if v, ok := s.memo.Get(key); ok {
		return v, true, nil
	}
	v, err := s.pool.Submit(ctx, func(ctx context.Context) (out any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("server: job panicked: %v\n%s", p, debug.Stack())
			}
		}()
		switch {
		case job.Simulate != nil:
			return runSimulate(ctx, *job.Simulate)
		case job.Model != nil:
			return runModel(*job.Model)
		default:
			return nil, badRequest("empty job")
		}
	})
	if err != nil {
		return nil, false, err
	}
	s.memo.Put(key, v)
	return v, false, nil
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Simulate: &req})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		*SimulateResponse
		Memoized bool `json:"memoized"`
	}{v.(*SimulateResponse), memoized})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req ModelRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Model: &req})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		*ModelResponse
		Memoized bool `json:"memoized"`
	}{v.(*ModelResponse), memoized})
}

// handleSweep fans the batch out across the worker pool and streams the
// results back in input order as they complete.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// Fan out: one goroutine per job, throughput bounded by the pool.
	// Each job's slot is a single-element channel so the writer below
	// can emit results in input order while later jobs keep computing.
	slots := make([]chan SweepResult, len(req.Jobs))
	for i := range req.Jobs {
		slots[i] = make(chan SweepResult, 1)
		go func(i int, job SweepJob) {
			res := SweepResult{Index: i}
			v, memoized, err := s.computeJob(ctx, job)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Memoized = memoized
				switch t := v.(type) {
				case *SimulateResponse:
					res.Simulate = t
				case *ModelResponse:
					res.Model = t
				}
			}
			slots[i] <- res
		}(i, req.Jobs[i])
	}

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprint(w, "{\"results\":[\n"); err != nil {
		return
	}
	enc := json.NewEncoder(w)
	for i := range slots {
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		if err := enc.Encode(<-slots[i]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	fmt.Fprint(w, "]}\n")
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsResponse is the /v1/stats body.
type StatsResponse struct {
	Memo struct {
		MemoStats
		HitRatio float64 `json:"hitRatio"`
	} `json:"memo"`
	Pool struct {
		Workers int   `json:"workers"`
		Busy    int64 `json:"busy"`
		Queued  int64 `json:"queued"`
	} `json:"pool"`
	Metrics MetricsSnapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var resp StatsResponse
	resp.Memo.MemoStats = s.memo.Stats()
	resp.Memo.HitRatio = resp.Memo.MemoStats.HitRatio()
	resp.Pool.Workers = s.pool.Size()
	resp.Pool.Busy = s.metrics.Gauge("pool.busy").Value()
	resp.Pool.Queued = s.metrics.Gauge("pool.queued").Value()
	resp.Metrics = s.metrics.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}
