package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"

	"primecache/internal/obs"
)

// decodeJSON strictly decodes the request body into dst, rejecting
// unknown fields and trailing garbage.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.Limits.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return Errf(CodeJobTooLarge, "request body exceeds %d bytes", tooBig.Limit)
		}
		return Errf(CodeInvalidRequest, "decoding request: %v", err)
	}
	if dec.More() {
		return Errf(CodeInvalidRequest, "trailing data after JSON body")
	}
	return nil
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// inflightCall is one in-progress computation concurrent identical jobs
// attach to: done is closed after val/err are set.
type inflightCall struct {
	done chan struct{}
	val  any
	err  error
}

// computeJob evaluates one job through the two cache tiers and the
// worker pool: memo hit → cached result; memo miss → persist-tier
// lookup (a disk hit is promoted into the LRU and counts as memoized);
// full miss → compute on a pool worker, then store through both tiers.
// Concurrent identical jobs are single-flighted: the first becomes the
// leader and computes, the rest share its result and count as memoized —
// so a sweep repeating one config costs one worker slot, not many.
func (s *Server) computeJob(ctx context.Context, job SweepJob, degrade bool) (result any, memoized bool, err error) {
	key := job.Key()
	for {
		_, mspan := obs.Start(ctx, "memo.lookup")
		v, hit := s.memo.Get(key)
		mspan.SetAttr("hit", strconv.FormatBool(hit))
		mspan.End()
		if hit {
			return v, true, nil
		}
		if s.persist != nil {
			if v, ok := s.persistLookup(ctx, key); ok {
				return v, true, nil
			}
		}
		if !s.memo.Enabled() {
			v, err := s.compute(ctx, job, degrade)
			if err == nil && !isDegraded(v) && s.persist != nil {
				s.persistStore(ctx, key, v)
			}
			return v, false, err
		}
		s.callMu.Lock()
		c, joined := s.calls[key]
		if !joined {
			c = &inflightCall{done: make(chan struct{})}
			s.calls[key] = c
		}
		s.callMu.Unlock()

		if !joined {
			// Leader: compute, publish to the memo, then release joiners.
			// Degraded results stay out of the memo: their stats are
			// guard-verified but the degraded flag describes this
			// request's pressure, not a later request's.
			c.val, c.err = s.compute(ctx, job, degrade)
			if c.err == nil && !isDegraded(c.val) {
				s.memo.Put(key, c.val)
				if s.persist != nil {
					s.persistStore(ctx, key, c.val)
				}
			}
			s.callMu.Lock()
			delete(s.calls, key)
			s.callMu.Unlock()
			close(c.done)
			return c.val, false, c.err
		}

		_, jspan := obs.Start(ctx, "singleflight.join")
		select {
		case <-c.done:
			jspan.End()
		case <-ctx.Done():
			jspan.End()
			return nil, false, ctx.Err()
		}
		if c.err != nil {
			// The leader failed on its own terms — its deadline, its
			// cancelled client, or the shutdown race. That verdict does
			// not apply to this request, so retry (likely as leader).
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) || errors.Is(c.err, ErrPoolClosed) {
				continue
			}
			return nil, false, c.err
		}
		// Re-read through the memo so the hit shows up in its counters.
		if v, ok := s.memo.Get(key); ok {
			return v, true, nil
		}
		return c.val, true, nil
	}
}

// isDegraded reports whether a computed value carries the degraded flag.
func isDegraded(v any) bool {
	sr, ok := v.(*SimulateResponse)
	return ok && sr.Degraded
}

// compute runs one job on a pool worker. Simulation panics (a config
// that slipped past validation) surface as errors, not a crashed worker.
// A job stopped early by its context surfaces as a PartialError, whose
// completed-reference count feeds the /v1/stats partial-work counters.
func (s *Server) compute(ctx context.Context, job SweepJob, degrade bool) (any, error) {
	v, err := s.pool.Submit(ctx, func(ctx context.Context) (out any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("server: job panicked: %v\n%s", p, debug.Stack())
			}
		}()
		if s.opts.Faults != nil {
			f := s.opts.Faults("compute", s.computeSeq.Add(1))
			if err := sleepFault(ctx, s.clock, f.Latency); err != nil {
				return nil, err
			}
			if f.Err != nil {
				return nil, f.Err
			}
		}
		switch {
		case job.Simulate != nil:
			resp, err := runSimulate(ctx, *job.Simulate, evalOpts{degrade: degrade})
			if err == nil && resp.Degraded {
				s.metrics.Counter("admission.degraded").Inc()
			}
			return resp, err
		case job.Model != nil:
			return runModel(*job.Model)
		default:
			return nil, Errf(CodeInvalidRequest, "empty job")
		}
	})
	var pe *PartialError
	if errors.As(err, &pe) {
		s.metrics.Counter("compute.cancelledJobs").Inc()
		s.metrics.Counter("compute.partialRefs").Add(pe.Refs)
	}
	return v, err
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(s.opts.Limits); err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admitRequest(r.Context(), "simulate")
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Simulate: &req}, s.degradeNow())
	if err != nil {
		writeError(w, err)
		return
	}
	resp := v.(*SimulateResponse)
	s.writeConditional(w, r, SweepJob{Simulate: &req}.Key(), resp, memoized, struct {
		*SimulateResponse
		Memoized bool `json:"memoized"`
	}{resp, memoized})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req ModelRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(s.opts.Limits); err != nil {
		writeError(w, err)
		return
	}
	release, err := s.admitRequest(r.Context(), "model")
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Model: &req}, false)
	if err != nil {
		writeError(w, err)
		return
	}
	resp := v.(*ModelResponse)
	s.writeConditional(w, r, SweepJob{Model: &req}.Key(), resp, memoized, struct {
		*ModelResponse
		Memoized bool `json:"memoized"`
	}{resp, memoized})
}

// handleSweep fans the batch out across the worker pool and streams the
// results back in input order as they complete.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(s.opts.Limits); err != nil {
		writeError(w, err)
		return
	}
	// One admission slot covers the whole batch: the worker pool already
	// bounds its parallelism, so the queue tracks requests, not jobs.
	release, err := s.admitRequest(r.Context(), "sweep")
	if err != nil {
		writeError(w, err)
		return
	}
	defer release()
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	degrade := s.degradeNow()

	// Fan out: one goroutine per job, throughput bounded by the pool.
	// Each job's slot is a single-element channel so the writer below
	// can emit results in input order while later jobs keep computing.
	slots := make([]chan SweepResult, len(req.Jobs))
	for i := range req.Jobs {
		slots[i] = make(chan SweepResult, 1)
		go func(i int, job SweepJob) {
			// Per-job span, ended before the result is handed to the
			// writer: once the response is written every job span is in
			// the trace.
			jctx, jspan := obs.Start(ctx, "sweep.job", obs.Int("idx", i))
			res := SweepResult{Index: i}
			v, memoized, err := s.computeJob(jctx, job, degrade)
			if err != nil {
				ae := asAPIError(err)
				res.Error = ae.Message
				res.ErrorCode = ae.Code
			} else {
				res.Memoized = memoized
				switch t := v.(type) {
				case *SimulateResponse:
					res.Simulate = t
				case *ModelResponse:
					res.Model = t
				}
			}
			jspan.End()
			slots[i] <- res
		}(i, req.Jobs[i])
	}

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprint(w, "{\"results\":[\n"); err != nil {
		return
	}
	enc := json.NewEncoder(w)
	for i := range slots {
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		if err := enc.Encode(<-slots[i]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	fmt.Fprint(w, "]}\n")
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ReadyzResponse is the /v1/readyz body: readiness, as opposed to the
// pure liveness of /v1/healthz. A draining server is alive but not
// ready — load balancers and the cluster health checker route away from
// it while its in-flight work finishes. WarmKeys reports how many job
// keys this server answers without pool work (memo entries, or persist
// keys when the disk tier is larger); the coordinator prefers warmer
// replicas when re-scattering around a failure.
type ReadyzResponse struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining"`
	WarmKeys int    `json:"warm_keys"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, ReadyzResponse{Status: "draining", Draining: true, WarmKeys: s.WarmKeys()})
		return
	}
	writeJSON(w, http.StatusOK, ReadyzResponse{Status: "ok", WarmKeys: s.WarmKeys()})
}

// StatsResponse is the /v1/stats body, schema 2: the memo, persist,
// admission, and partial blocks are shaped identically to the
// coordinator's (see StatsV2); pool and metrics are this tier's
// extras. The block shapes are wire-compatible with schema 1 — the
// Deprecation/Sunset headers on the endpoint refer to the un-versioned
// schema-1 layout as a whole.
type StatsResponse struct {
	Schema  int          `json:"schema"`
	Memo    MemoBlock    `json:"memo"`
	Persist PersistBlock `json:"persist"`
	Pool    struct {
		Workers int   `json:"workers"`
		Busy    int64 `json:"busy"`
		Queued  int64 `json:"queued"`
	} `json:"pool"`
	// Admission reports the overload valve: queue occupancy, capacity,
	// shed and degraded request counts, and the pressure fraction the
	// degradation threshold is compared against.
	Admission AdmissionBlock `json:"admission"`
	// Partial accounts work burned by jobs that were cancelled or timed
	// out mid-simulation: how many jobs stopped early and how many
	// references they had completed when they stopped.
	Partial PartialBlock   `json:"partial"`
	Metrics MetricsSnapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var resp StatsResponse
	resp.Schema = StatsSchemaVersion
	resp.Memo = memoBlock(s.memo.Stats())
	resp.Persist = persistBlock(s.persist)
	resp.Pool.Workers = s.pool.Size()
	resp.Pool.Busy = s.metrics.Gauge("pool.busy").Value()
	resp.Pool.Queued = s.metrics.Gauge("pool.queued").Value()
	resp.Admission.Capacity = s.admit.capacity()
	resp.Admission.Queued = s.metrics.Gauge("admission.queued").Value()
	resp.Admission.Shed = s.metrics.Counter("admission.shed").Value()
	resp.Admission.Degraded = s.metrics.Counter("admission.degraded").Value()
	resp.Admission.Pressure = s.admit.pressure()
	resp.Partial.CancelledJobs = s.metrics.Counter("compute.cancelledJobs").Value()
	resp.Partial.RefsCompleted = s.metrics.Counter("compute.partialRefs").Value()
	resp.Metrics = s.metrics.Snapshot()
	SetDeprecationHeaders(w.Header().Set)
	writeJSON(w, http.StatusOK, resp)
}
