package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
)

// decodeJSON strictly decodes the request body into dst, rejecting
// unknown fields and trailing garbage.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, dst any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return badRequest("decoding request: %v", err)
	}
	if dec.More() {
		return badRequest("trailing data after JSON body")
	}
	return nil
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the connection is the only failure mode here
}

// writeError maps an error to the structured {"error": {...}} body.
// Validation failures become 400s; timeouts 504s; everything else 500s.
func writeError(w http.ResponseWriter, err error) {
	var ae apiError
	switch {
	case errors.As(err, &ae):
	case errors.Is(err, context.DeadlineExceeded):
		ae = apiError{Code: http.StatusGatewayTimeout, Message: "request timed out"}
	case errors.Is(err, context.Canceled):
		ae = apiError{Code: 499, Message: "request cancelled"}
	case errors.Is(err, ErrPoolClosed):
		ae = apiError{Code: http.StatusServiceUnavailable, Message: "server shutting down"}
	default:
		ae = apiError{Code: http.StatusInternalServerError, Message: err.Error()}
	}
	writeJSON(w, ae.Code, map[string]apiError{"error": ae})
}

// inflightCall is one in-progress computation concurrent identical jobs
// attach to: done is closed after val/err are set.
type inflightCall struct {
	done chan struct{}
	val  any
	err  error
}

// computeJob evaluates one job through the memoizer and worker pool:
// memo hit → cached result; miss → compute on a pool worker, then store.
// Concurrent identical jobs are single-flighted: the first becomes the
// leader and computes, the rest share its result and count as memoized —
// so a sweep repeating one config costs one worker slot, not many.
func (s *Server) computeJob(ctx context.Context, job SweepJob) (result any, memoized bool, err error) {
	key := job.Key()
	for {
		if v, ok := s.memo.Get(key); ok {
			return v, true, nil
		}
		if !s.memo.Enabled() {
			v, err := s.compute(ctx, job)
			return v, false, err
		}
		s.callMu.Lock()
		c, joined := s.calls[key]
		if !joined {
			c = &inflightCall{done: make(chan struct{})}
			s.calls[key] = c
		}
		s.callMu.Unlock()

		if !joined {
			// Leader: compute, publish to the memo, then release joiners.
			c.val, c.err = s.compute(ctx, job)
			if c.err == nil {
				s.memo.Put(key, c.val)
			}
			s.callMu.Lock()
			delete(s.calls, key)
			s.callMu.Unlock()
			close(c.done)
			return c.val, false, c.err
		}

		select {
		case <-c.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		if c.err != nil {
			// The leader failed on its own terms — its deadline, its
			// cancelled client, or the shutdown race. That verdict does
			// not apply to this request, so retry (likely as leader).
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) || errors.Is(c.err, ErrPoolClosed) {
				continue
			}
			return nil, false, c.err
		}
		// Re-read through the memo so the hit shows up in its counters.
		if v, ok := s.memo.Get(key); ok {
			return v, true, nil
		}
		return c.val, true, nil
	}
}

// compute runs one job on a pool worker. Simulation panics (a config
// that slipped past validation) surface as errors, not a crashed worker.
func (s *Server) compute(ctx context.Context, job SweepJob) (any, error) {
	return s.pool.Submit(ctx, func(ctx context.Context) (out any, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("server: job panicked: %v\n%s", p, debug.Stack())
			}
		}()
		switch {
		case job.Simulate != nil:
			return runSimulate(ctx, *job.Simulate)
		case job.Model != nil:
			return runModel(*job.Model)
		default:
			return nil, badRequest("empty job")
		}
	})
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimulateRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Simulate: &req})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		*SimulateResponse
		Memoized bool `json:"memoized"`
	}{v.(*SimulateResponse), memoized})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	var req ModelRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	v, memoized, err := s.computeJob(ctx, SweepJob{Model: &req})
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		*ModelResponse
		Memoized bool `json:"memoized"`
	}{v.(*ModelResponse), memoized})
}

// handleSweep fans the batch out across the worker pool and streams the
// results back in input order as they complete.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if err := s.decodeJSON(w, r, &req); err != nil {
		writeError(w, err)
		return
	}
	if err := req.Validate(); err != nil {
		writeError(w, badRequest("%v", err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()

	// Fan out: one goroutine per job, throughput bounded by the pool.
	// Each job's slot is a single-element channel so the writer below
	// can emit results in input order while later jobs keep computing.
	slots := make([]chan SweepResult, len(req.Jobs))
	for i := range req.Jobs {
		slots[i] = make(chan SweepResult, 1)
		go func(i int, job SweepJob) {
			res := SweepResult{Index: i}
			v, memoized, err := s.computeJob(ctx, job)
			if err != nil {
				res.Error = err.Error()
			} else {
				res.Memoized = memoized
				switch t := v.(type) {
				case *SimulateResponse:
					res.Simulate = t
				case *ModelResponse:
					res.Model = t
				}
			}
			slots[i] <- res
		}(i, req.Jobs[i])
	}

	w.Header().Set("Content-Type", "application/json")
	flusher, _ := w.(http.Flusher)
	if _, err := fmt.Fprint(w, "{\"results\":[\n"); err != nil {
		return
	}
	enc := json.NewEncoder(w)
	for i := range slots {
		if i > 0 {
			fmt.Fprint(w, ",\n")
		}
		if err := enc.Encode(<-slots[i]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	fmt.Fprint(w, "]}\n")
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// StatsResponse is the /v1/stats body.
type StatsResponse struct {
	Memo struct {
		MemoStats
		HitRatio float64 `json:"hitRatio"`
	} `json:"memo"`
	Pool struct {
		Workers int   `json:"workers"`
		Busy    int64 `json:"busy"`
		Queued  int64 `json:"queued"`
	} `json:"pool"`
	Metrics MetricsSnapshot `json:"metrics"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var resp StatsResponse
	resp.Memo.MemoStats = s.memo.Stats()
	resp.Memo.HitRatio = resp.Memo.MemoStats.HitRatio()
	resp.Pool.Workers = s.pool.Size()
	resp.Pool.Busy = s.metrics.Gauge("pool.busy").Value()
	resp.Pool.Queued = s.metrics.Gauge("pool.queued").Value()
	resp.Metrics = s.metrics.Snapshot()
	writeJSON(w, http.StatusOK, resp)
}
