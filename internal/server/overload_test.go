package server_test

// Overload stress suite: deterministic fault injection drives the
// admission valve, the shed path, and pressure-triggered degradation,
// all through the typed client — and each test ends in a graceful
// Shutdown so the suite doubles as a drain-safety check under -race.

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/client"
	"primecache/internal/server"
	"primecache/internal/trace"
)

// distinctJob returns a small simulate request memoization cannot
// collapse across i.
func distinctJob(i int) server.SimulateRequest {
	return server.SimulateRequest{
		Pattern: trace.Pattern{Name: "strided", Stride: int64(2*i + 1), N: 4096},
		Passes:  2,
	}
}

// TestShedRequestsNeverReachPool: with the admit stage forced to shed,
// every request bounces with a 429 before any work is scheduled — the
// worker pool must never see a task and the admission queue must end
// empty.
func TestShedRequestsNeverReachPool(t *testing.T) {
	s := server.New(server.Options{Workers: 2, Faults: func(stage string, seq uint64) server.Fault {
		if stage == "admit" {
			return server.Fault{QueueFull: true}
		}
		return server.Fault{}
	}})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0))
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Simulate(context.Background(), distinctJob(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		var ce *client.Error
		if !errors.As(err, &ce) || ce.Code != server.CodeOverloaded {
			t.Fatalf("request %d: err = %v, want overloaded", i, err)
		}
		if ce.RetryAfter <= 0 {
			t.Errorf("request %d: shed without a Retry-After hint", i)
		}
	}

	// Stats must still answer while the server sheds (healthz/stats
	// bypass admission), and must show the pool untouched.
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("stats during shed: %v", err)
	}
	if stats.Admission.Shed != n {
		t.Errorf("admission.shed = %d, want %d", stats.Admission.Shed, n)
	}
	if got := s.Metrics().Counter("pool.completed").Value(); got != 0 {
		t.Errorf("pool completed %d tasks; shed requests must never reach the pool", got)
	}
	if got := s.Metrics().Gauge("pool.busy").Value(); got != 0 {
		t.Errorf("pool.busy = %d, want 0", got)
	}
	if got := s.Metrics().Gauge("admission.queued").Value(); got != 0 {
		t.Errorf("admission.queued = %d after all requests returned, want 0", got)
	}
}

// TestOverloadBurstShedsAndDrains: a burst of distinct jobs against a
// one-worker, zero-backlog server with slowed compute must split into
// some successes and some organic 429s (no forced shed — the queue
// really fills), and the server must then drain cleanly.
func TestOverloadBurstShedsAndDrains(t *testing.T) {
	s := server.New(server.Options{
		Workers:    1,
		QueueDepth: -1, // capacity == worker count: the narrowest valve
		Faults: func(stage string, seq uint64) server.Fault {
			if stage == "compute" {
				return server.Fault{Latency: 30 * time.Millisecond}
			}
			return server.Fault{}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := client.New(ts.URL, client.WithRetries(0))
	const n = 16
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Simulate(context.Background(), distinctJob(i))
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for i, err := range errs {
		switch {
		case err == nil:
			ok++
		default:
			var ce *client.Error
			if !errors.As(err, &ce) || ce.Code != server.CodeOverloaded {
				t.Fatalf("request %d: err = %v, want nil or overloaded", i, err)
			}
			if ce.RetryAfter <= 0 {
				t.Errorf("request %d: 429 without Retry-After", i)
			}
			shed++
		}
	}
	if ok == 0 || shed == 0 {
		t.Fatalf("burst split ok=%d shed=%d; want both non-zero", ok, shed)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain after burst: %v", err)
	}
	if got := s.Metrics().Gauge("admission.queued").Value(); got != 0 {
		t.Errorf("admission.queued = %d after drain, want 0", got)
	}
}

// TestDegradedAnalyticUnderPressure: when admission pressure crosses the
// threshold, a qualifying strided job below the analytic cutoff is
// answered by the closed form with degraded:true — and its stats are
// byte-identical to what an unloaded server simulates for the same
// request. Degraded results must also stay out of the memoizer.
func TestDegradedAnalyticUnderPressure(t *testing.T) {
	// capacity == 1, threshold 0.5: a request's own admission slot pushes
	// pressure to 1.0, so every admitted request computes in degraded mode.
	pressured := server.New(server.Options{Workers: 1, QueueDepth: -1, DegradeThreshold: 0.5})
	defer pressured.Shutdown(context.Background())
	pts := httptest.NewServer(pressured.Handler())
	defer pts.Close()

	calm := server.New(server.Options{Workers: 1})
	defer calm.Shutdown(context.Background())
	cts := httptest.NewServer(calm.Handler())
	defer cts.Close()

	// Prime C=13 (8191 sets), 2^17 refs × 2 passes = 262144 references:
	// far below the 2^22 analytic cutoff, above the degraded-path floor
	// of 2× the guard replay (2 passes × 16383 refs).
	req := server.SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Start: 7, Stride: 129, N: 1 << 17, Stream: 1},
		Passes:  2,
	}
	ctx := context.Background()
	fast, err := client.New(pts.URL).Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := client.New(cts.URL).Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Degraded || !fast.Analytic {
		t.Fatalf("pressured response not flagged degraded+analytic: %+v", fast.SimulateResponse)
	}
	if slow.Degraded || slow.Analytic {
		t.Fatalf("calm response unexpectedly analytic: %+v", slow.SimulateResponse)
	}
	// Same schema, same numbers: only the flags may differ.
	f, sl := fast.SimulateResponse, slow.SimulateResponse
	f.Analytic, f.Degraded = false, false
	if f != sl {
		t.Errorf("degraded stats diverge from simulation:\n degraded %+v\n simulated %+v", f, sl)
	}

	// A degraded answer must not poison the memo: the identical request
	// recomputes (Memoized=false) rather than replaying a result whose
	// flag described an earlier pressure state.
	again, err := client.New(pts.URL).Simulate(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if again.Memoized {
		t.Error("degraded result was served from the memoizer")
	}
	stats, err := client.New(pts.URL).Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Admission.Degraded < 2 {
		t.Errorf("admission.degraded = %d, want >= 2", stats.Admission.Degraded)
	}
}
