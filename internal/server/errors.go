package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// ErrorCode is the machine-readable classification every error response
// carries. Clients dispatch on the code, not on the HTTP status or the
// human-readable message: the code set is the API contract.
type ErrorCode string

const (
	// CodeInvalidRequest: the request is malformed or fails validation;
	// retrying the same request cannot succeed.
	CodeInvalidRequest ErrorCode = "invalid_request"
	// CodeJobTooLarge: the request is well-formed but exceeds the
	// server's configured limits (references per job, sweep batch size,
	// body bytes); retrying cannot succeed, shrinking the job can.
	CodeJobTooLarge ErrorCode = "job_too_large"
	// CodeOverloaded: the admission queue is full; retry after the
	// suggested delay.
	CodeOverloaded ErrorCode = "overloaded"
	// CodeTimeout: the per-request compute deadline expired.
	CodeTimeout ErrorCode = "timeout"
	// CodeCancelled: the client went away before the job finished.
	CodeCancelled ErrorCode = "cancelled"
	// CodeShuttingDown: the server is draining; retry against another
	// replica or after the restart.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeUnavailable: the coordinator could not reach any backend
	// replica for the job (all down, draining, or shedding); retry once
	// the cluster heals.
	CodeUnavailable ErrorCode = "upstream_unavailable"
	// CodeNotFound: the requested resource does not exist on this server
	// (e.g. /v1/debug/traces on a server built without a tracer, or an
	// unknown trace id).
	CodeNotFound ErrorCode = "not_found"
	// CodeUnauthorized: the request needs a valid admin bearer token and
	// did not present one; retrying without new credentials cannot
	// succeed.
	CodeUnauthorized ErrorCode = "unauthorized"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal ErrorCode = "internal"
)

// statusCancelled is the nginx-convention status for "client closed
// request"; there is no standard code.
const statusCancelled = 499

// HTTPStatus maps the code to its response status.
func (c ErrorCode) HTTPStatus() int {
	switch c {
	case CodeInvalidRequest:
		return http.StatusBadRequest
	case CodeJobTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeTimeout:
		return http.StatusGatewayTimeout
	case CodeCancelled:
		return statusCancelled
	case CodeShuttingDown:
		return http.StatusServiceUnavailable
	case CodeUnavailable:
		return http.StatusBadGateway
	case CodeNotFound:
		return http.StatusNotFound
	case CodeUnauthorized:
		return http.StatusUnauthorized
	default:
		return http.StatusInternalServerError
	}
}

// APIError is the unified error body every endpoint returns:
//
//	{"error":{"code":"overloaded","message":"...","retry_after_ms":1200}}
//
// RetryAfterMs, when positive, is also mirrored into a Retry-After
// header (rounded up to whole seconds).
type APIError struct {
	Code         ErrorCode `json:"code"`
	Message      string    `json:"message"`
	RetryAfterMs int64     `json:"retry_after_ms,omitempty"`
}

func (e *APIError) Error() string { return string(e.Code) + ": " + e.Message }

// Errf builds an APIError with a formatted message.
func Errf(code ErrorCode, format string, args ...any) *APIError {
	return &APIError{Code: code, Message: strings.TrimSpace(fmt.Sprintf(format, args...))}
}

// ErrorEnvelope is the wire form of an error response.
type ErrorEnvelope struct {
	Error *APIError `json:"error"`
}

// asAPIError maps any error to the envelope body. Typed errors pass
// through; context and lifecycle errors get their canonical codes;
// anything else is an internal error.
func asAPIError(err error) *APIError {
	var ae *APIError
	switch {
	case errors.As(err, &ae):
		return ae
	case errors.Is(err, context.DeadlineExceeded):
		return Errf(CodeTimeout, "request timed out")
	case errors.Is(err, context.Canceled):
		return Errf(CodeCancelled, "request cancelled")
	case errors.Is(err, ErrPoolClosed):
		return Errf(CodeShuttingDown, "server shutting down")
	default:
		return Errf(CodeInternal, "%v", err)
	}
}

// writeError renders err as the unified envelope, setting Retry-After
// when the error carries a hint.
func writeError(w http.ResponseWriter, err error) {
	ae := asAPIError(err)
	if ae.RetryAfterMs > 0 {
		secs := (ae.RetryAfterMs + 999) / 1000
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, ae.Code.HTTPStatus(), ErrorEnvelope{Error: ae})
}
