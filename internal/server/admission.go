package server

import (
	"context"
	"sync/atomic"
	"time"

	"primecache/internal/sim"
)

// admission is the server's overload valve. Every compute request
// (simulate, model, sweep) claims one slot in a bounded global queue and
// one in its endpoint's queue before any work is scheduled; when either
// is full the request is shed immediately with an "overloaded" envelope
// and a Retry-After hint derived from the current queue depth, so a
// burst of distinct jobs (the memoizer-defeating load shape) degrades
// into fast 429s instead of an unbounded backlog of goroutines. Healthz
// and stats bypass admission: they must answer while the server sheds.
type admission struct {
	slots    chan struct{}
	endpoint map[string]chan struct{}

	queued *Gauge
	shed   *Counter
}

// newAdmission builds the valve: capacity slots globally, perEndpoint
// slots for each named endpoint (perEndpoint >= capacity disables the
// per-endpoint level in practice).
func newAdmission(capacity, perEndpoint int, endpoints []string, m *Metrics) *admission {
	a := &admission{
		slots:    make(chan struct{}, capacity),
		endpoint: make(map[string]chan struct{}, len(endpoints)),
		queued:   m.Gauge("admission.queued"),
		shed:     m.Counter("admission.shed"),
	}
	m.Gauge("admission.capacity").Set(int64(capacity))
	for _, e := range endpoints {
		a.endpoint[e] = make(chan struct{}, perEndpoint)
	}
	return a
}

// tryAdmit claims a global and a per-endpoint slot without blocking.
// On success the returned release frees both (call exactly once); on
// overload it returns false and counts the shed.
func (a *admission) tryAdmit(endpoint string) (release func(), ok bool) {
	select {
	case a.slots <- struct{}{}:
	default:
		a.shed.Inc()
		return nil, false
	}
	ep := a.endpoint[endpoint]
	if ep != nil {
		select {
		case ep <- struct{}{}:
		default:
			<-a.slots
			a.shed.Inc()
			return nil, false
		}
	}
	a.queued.Inc()
	var released atomic.Bool
	return func() {
		if released.Swap(true) {
			return
		}
		a.queued.Dec()
		if ep != nil {
			<-ep
		}
		<-a.slots
	}, true
}

// depth returns the current global queue occupancy.
func (a *admission) depth() int { return len(a.slots) }

// capacity returns the global queue size.
func (a *admission) capacity() int { return cap(a.slots) }

// pressure returns occupancy as a fraction of capacity in [0, 1].
func (a *admission) pressure() float64 {
	c := cap(a.slots)
	if c == 0 {
		return 1
	}
	return float64(len(a.slots)) / float64(c)
}

// retryAfterHint estimates how long a shed client should wait before
// retrying: the current backlog divided across the workers, priced at
// the mean observed compute latency (a fixed default before any job has
// completed), clamped to a sane range. The estimate is intentionally
// rough — its job is to spread the retry storm, not to be exact.
func retryAfterHint(depth, workers int, meanComputeUs float64) int64 {
	const (
		defaultJobMs = 250
		minMs        = 100
		maxMs        = 30_000
	)
	jobMs := defaultJobMs
	if meanComputeUs > 0 {
		jobMs = int(meanComputeUs / 1000)
	}
	if workers < 1 {
		workers = 1
	}
	ms := int64(depth+1) * int64(jobMs) / int64(workers)
	if ms < minMs {
		ms = minMs
	}
	if ms > maxMs {
		ms = maxMs
	}
	return ms
}

// Fault is one injected failure, produced by a FaultFunc. The zero
// value means "no fault". Faults are applied in field order: Latency
// first, then QueueFull/Err.
type Fault struct {
	// Latency delays the stage (bounded by the request context where
	// one is available).
	Latency time.Duration
	// QueueFull, at the admit stage, sheds the request as if the
	// admission queue were full, regardless of real occupancy.
	QueueFull bool
	// Err aborts the stage with this error.
	Err error
}

// FaultFunc deterministically maps (stage, sequence number) to a fault
// to inject; stages are "admit" (before admission control runs) and
// "compute" (on a pool worker, before the job body). Sequence numbers
// start at 1 and are per-stage. Fault injection exists for the stress
// suite: production servers leave Options.Faults nil.
type FaultFunc func(stage string, seq uint64) Fault

// sleepFault waits out a latency fault on clk, giving up early if ctx
// ends.
func sleepFault(ctx context.Context, clk sim.Clock, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := sim.Or(clk).NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
