package server

import (
	"context"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/trace"
)

// TestAnalyticMatchesVectorPath forces the same qualifying job down both
// the closed-form path and the vector simulation path and requires
// byte-identical responses (stats, refs, adder steps) — the analytic
// path must be a pure optimisation, invisible except for the flag.
func TestAnalyticMatchesVectorPath(t *testing.T) {
	for _, tc := range []struct {
		name string
		req  SimulateRequest
	}{
		{"prime coprime stride", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Start: 9, Stride: 512, N: 1 << 14, Stream: 1},
			Passes:  5,
		}},
		{"prime capacity regime", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 5},
			Pattern: trace.Pattern{Name: "strided", Start: 0, Stride: 3, N: 1 << 15, Stream: 1},
			Passes:  2,
		}},
		{"prime multi-chunk", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Start: 7, Stride: 129, N: 3*evalChunk + 11, Stream: 1},
			Passes:  2,
		}},
		{"direct pow2 stride", SimulateRequest{
			Cache:   cache.Spec{Kind: "direct", Lines: 8192},
			Pattern: trace.Pattern{Name: "strided", Start: 0, Stride: 64, N: 1 << 14, Stream: 1},
			Passes:  4,
		}},
		{"diagonal", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "diagonal", Start: 3, LD: 1024, N: 1 << 14, Stream: 2},
			Passes:  4,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := tc.req.Normalize()
			stride := req.Pattern.Stride
			if req.Pattern.Name == "diagonal" {
				stride = int64(req.Pattern.LD) + 1
			}
			fast, err := simulateAnalytic(req, req.Cache, stride)
			if err != nil {
				t.Fatal(err)
			}
			if fast == nil {
				t.Fatal("closed form declined the sweep")
			}
			if !fast.Analytic {
				t.Fatal("analytic response not flagged")
			}
			vc, err := core.FromSpec(req.Cache)
			if err != nil {
				t.Fatal(err)
			}
			slow, err := runSimulateVector(context.Background(), req, vc)
			if err != nil {
				t.Fatal(err)
			}
			fast.Analytic = false
			if *fast != *slow {
				t.Errorf("analytic response diverges from vector simulation:\n analytic %+v\n vector   %+v", *fast, *slow)
			}
		})
	}
}

// TestAnalyticDoesNotApply pins the fallbacks: organisations and sizes
// the closed form must decline.
func TestAnalyticDoesNotApply(t *testing.T) {
	for _, tc := range []struct {
		name string
		req  SimulateRequest
	}{
		{"too small", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 1 << 10, Stream: 1},
			Passes:  2,
		}},
		{"assoc organisation", SimulateRequest{
			Cache:   cache.Spec{Kind: "assoc", Lines: 8192, Ways: 4},
			Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 1 << 20, Stream: 1},
			Passes:  8,
		}},
		{"victim organisation", SimulateRequest{
			Cache:   cache.Spec{Kind: "victim", Lines: 8192},
			Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 1 << 20, Stream: 1},
			Passes:  8,
		}},
		{"subblock pattern", SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "subblock", LD: 4096, B1: 2048, B2: 2048, Stream: 1},
			Passes:  2,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := trySimulateAnalytic(tc.req.Normalize(), false)
			if err != nil {
				t.Fatal(err)
			}
			if resp != nil {
				t.Errorf("job unexpectedly qualified for the analytic path: %+v", resp)
			}
		})
	}
}

// TestSimulateHugeSweepIsAnalytic goes through the public runSimulate
// entry point with a job that would issue 32M references and checks it
// is answered analytically (and therefore instantly).
func TestSimulateHugeSweepIsAnalytic(t *testing.T) {
	resp, err := runSimulate(context.Background(), SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Stride: 8191, N: 1 << 22, Stream: 1},
		Passes:  8,
	}, evalOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Analytic {
		t.Fatal("huge sweep was not answered analytically")
	}
	// Stride = C: every reference lands in one set. Pass 1 is all
	// compulsory; every later pass thrashes that set with capacity
	// misses (the sweep far exceeds the shadow directory).
	n := uint64(1 << 22)
	if resp.Stats.Accesses != 8*n || resp.Stats.Compulsory != n || resp.Stats.Capacity != 7*n || resp.Stats.Hits != 0 {
		t.Errorf("unexpected stats for one-set sweep: %v", resp.Stats)
	}
}

// TestAnalyticGateEndToEnd runs one threshold-sized job through
// trySimulateAnalytic (gate + admission guard + closed form) and the
// vector path, requiring identical responses.
func TestAnalyticGateEndToEnd(t *testing.T) {
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Start: 5, Stride: 512, N: 1 << 19, Stream: 1},
		Passes:  8, // N × passes == analyticMinRefs exactly
	}.Normalize()
	fast, err := trySimulateAnalytic(req, false)
	if err != nil {
		t.Fatal(err)
	}
	if fast == nil {
		t.Fatal("threshold-sized job did not qualify for the analytic path")
	}
	vc, err := core.FromSpec(req.Cache)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := runSimulateVector(context.Background(), req, vc)
	if err != nil {
		t.Fatal(err)
	}
	fast.Analytic = false
	if *fast != *slow {
		t.Errorf("analytic response diverges from vector simulation:\n analytic %+v\n vector   %+v", *fast, *slow)
	}
}
