package server

import (
	"context"
	"encoding/json"
	"strconv"

	"primecache/internal/obs"
	"primecache/internal/persist"
)

// The persist tier stores opaque bytes; the server owns the mapping
// between computed result values and those bytes. A one-byte type tag
// ('s' simulate, 'm' model) prefixes the result's JSON so the decode
// side can rebuild the right concrete type. Anything that fails to
// decode is treated as a miss and counted — the same fail-open contract
// the store itself applies to checksum failures.

const (
	persistTagSimulate = 's'
	persistTagModel    = 'm'
)

// persistEncode serialises a computed result for the disk tier; ok is
// false for values that don't belong there.
func persistEncode(v any) ([]byte, bool) {
	var tag byte
	switch v.(type) {
	case *SimulateResponse:
		tag = persistTagSimulate
	case *ModelResponse:
		tag = persistTagModel
	default:
		return nil, false
	}
	body, err := json.Marshal(v)
	if err != nil {
		return nil, false
	}
	return append([]byte{tag}, body...), true
}

// persistDecode rebuilds the concrete result type from stored bytes.
func persistDecode(b []byte) (any, bool) {
	if len(b) < 2 {
		return nil, false
	}
	switch b[0] {
	case persistTagSimulate:
		var v SimulateResponse
		if json.Unmarshal(b[1:], &v) != nil {
			return nil, false
		}
		return &v, true
	case persistTagModel:
		var v ModelResponse
		if json.Unmarshal(b[1:], &v) != nil {
			return nil, false
		}
		return &v, true
	default:
		return nil, false
	}
}

// persistLookup is the second-level probe after a memo miss: a disk hit
// is promoted into the LRU and served as memoized. Undecodable values
// count as decode errors and fall through to compute.
func (s *Server) persistLookup(ctx context.Context, key string) (any, bool) {
	_, span := obs.Start(ctx, "persist-lookup")
	defer span.End()
	b, ok := s.persist.Get(key)
	if !ok {
		span.SetAttr("hit", "false")
		return nil, false
	}
	v, ok := persistDecode(b)
	if !ok {
		span.SetAttr("hit", "false")
		s.metrics.Counter("persist.decodeErrors").Inc()
		return nil, false
	}
	span.SetAttr("hit", "true")
	s.memo.Put(key, v)
	return v, true
}

// persistStore writes a freshly computed result through to the disk
// tier. Store errors degrade durability, never the response, so they
// only bump a counter.
func (s *Server) persistStore(ctx context.Context, key string, v any) {
	b, ok := persistEncode(v)
	if !ok {
		return
	}
	ctx, span := obs.Start(ctx, "persist-store")
	span.SetAttr("bytes", strconv.Itoa(len(b)))
	defer span.End()
	if err := s.persist.Put(ctx, key, b); err != nil {
		s.metrics.Counter("persist.storeErrors").Inc()
	}
}

// persistFamilies renders the disk tier's counters as the
// vcached_persist_* Prometheus families. Only called when the tier is
// enabled, so a memory-only server's exposition is unchanged.
func persistFamilies(st persist.Stats) []obs.Family {
	counter := func(name, help string, v uint64) obs.Family {
		return obs.Family{Name: name, Help: help, Kind: obs.KindCounter,
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	gauge := func(name, help string, v float64) obs.Family {
		return obs.Family{Name: name, Help: help, Kind: obs.KindGauge,
			Samples: []obs.Sample{{Value: v}}}
	}
	return []obs.Family{
		counter("vcached_persist_hits_total", "Persist-tier lookup hits.", st.Hits),
		counter("vcached_persist_misses_total", "Persist-tier lookup misses.", st.Misses),
		counter("vcached_persist_bytes_total", "Bytes appended to the persist log.", st.BytesAppended),
		counter("vcached_persist_segments_total", "Persist log segments created.", st.SegmentsCreated),
		counter("vcached_persist_compactions_total", "Persist log compaction passes.", st.Compactions),
		counter("vcached_persist_corrupt_records_total", "Records dropped for failing checksum or decode verification.", st.CorruptRecords),
		counter("vcached_persist_torn_truncations_total", "Torn log tails truncated during recovery.", st.TornTruncations),
		gauge("vcached_persist_keys", "Live keys in the persist index.", float64(st.Keys)),
		gauge("vcached_persist_disk_bytes", "Bytes currently on disk across live segments.", float64(st.DiskBytes)),
	}
}
