package server

import (
	"flag"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/obs"
	"primecache/internal/sim"
	"primecache/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// checkGolden compares got against testdata/<name>, rewriting it under
// -update (same pattern as internal/report):
//
//	go test ./internal/server -run Golden -update
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create golden files)", err)
	}
	if string(got) != string(want) {
		t.Errorf("%s: output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\n(rerun with -update if the change is intended)", name, got, want)
	}
}

// TestMetricsGolden pins the full /metrics exposition byte for byte.
// Everything feeding it is deterministic here: a virtual clock (zero
// latencies and uptime), a fixed worker count, and a single simulate
// request — so any drift in metric names, help text, bucket edges, or
// formatting shows up as a golden diff.
func TestMetricsGolden(t *testing.T) {
	clk := sim.NewVirtual()
	_, ts := newTestServer(t, Options{Workers: 2, Clock: clk})

	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 4096},
		Passes:  2,
	}
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", req); resp.StatusCode != 200 {
		t.Fatalf("simulate status = %d: %s", resp.StatusCode, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != promContentType {
		t.Fatalf("/metrics content type = %q, want %q", got, promContentType)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("/metrics is not valid Prometheus text format: %v", err)
	}
	checkGolden(t, "metrics.golden", body)
}

// TestMetricsExpositionUnderLoad runs a mixed workload on the real
// clock and asserts the exposition still parses — latencies land in
// arbitrary buckets, so this catches ladder bugs the frozen golden
// cannot.
func TestMetricsExpositionUnderLoad(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	for i := 0; i < 3; i++ {
		req := SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Stride: int64(512 + i), N: 4096},
			Passes:  2,
		}
		if resp, body := postJSON(t, ts.URL+"/v1/simulate", req); resp.StatusCode != 200 {
			t.Fatalf("simulate status = %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckExposition(body); err != nil {
		t.Fatalf("/metrics under load is not valid Prometheus text: %v\n%s", err, body)
	}
}

func TestTracesEndpointWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/debug/traces without a tracer: status %d, want 404", resp.StatusCode)
	}
}

// TestQuantileMatchesCumulativeLadder is the regression property for
// the exposition ladder and the QuantileUs rank fix: on 1000 seeded
// observation sets (spanning every bucket including overflow), the
// quantile read straight off the re-derived _bucket cumulative counts
// must equal QuantileUs, the ladder must be complete and monotone, and
// — when the quantile lands in a finite bucket — at least ceil(q·n)
// raw observations must actually sit at or below the reported bound
// (the check that catches rank truncation: 9 fast + 10 slow
// observations at q=0.5 must report a slow bucket).
func TestQuantileMatchesCumulativeLadder(t *testing.T) {
	overflowSentinel := histBuckets[len(histBuckets)-1] * 316 / 100
	quantiles := []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	for seed := 0; seed < 1000; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		var h Histogram
		n := 1 + rng.Intn(200)
		obsUs := make([]int64, n)
		for i := range obsUs {
			// Log-uniform over ~7 decades so every bucket, including
			// overflow past the 10s top edge, gets regular traffic.
			us := int64(math.Pow(10, 1+rng.Float64()*6.6))
			obsUs[i] = us
			h.Observe(time.Duration(us) * time.Microsecond)
		}
		s := h.Snapshot()
		uppers, cum := s.Cumulative()

		if cum[len(cum)-1] != s.Count {
			t.Fatalf("seed %d: ladder total %d != count %d", seed, cum[len(cum)-1], s.Count)
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Fatalf("seed %d: cumulative counts decrease at index %d: %v", seed, i, cum)
			}
		}

		for _, q := range quantiles {
			got := s.QuantileUs(q)
			need := uint64(math.Ceil(q * float64(s.Count)))
			if need == 0 {
				need = 1
			}
			want := int64(-1)
			for i, c := range cum {
				if c >= need {
					if i < len(uppers) {
						want = uppers[i]
					} else {
						want = overflowSentinel
					}
					break
				}
			}
			if got != want {
				t.Fatalf("seed %d q=%v: QuantileUs = %d, ladder says %d (count %d, need %d, cum %v)",
					seed, q, got, want, s.Count, need, cum)
			}
			if got != overflowSentinel {
				var atOrBelow uint64
				for _, us := range obsUs {
					if us <= got {
						atOrBelow++
					}
				}
				if atOrBelow < need {
					t.Fatalf("seed %d q=%v: only %d of %d observations <= reported bound %dµs, need %d",
						seed, q, atOrBelow, s.Count, got, need)
				}
			}
		}
	}
}
