package server

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"primecache/internal/obs"
	"primecache/internal/sim"
)

// ErrPoolClosed is returned by Submit after Close.
var ErrPoolClosed = errors.New("server: worker pool closed")

// Pool is a bounded worker pool: a fixed number of goroutines service
// submitted jobs, putting a hard ceiling on the CPU a burst of sweep
// requests can consume regardless of how many HTTP connections are open.
type Pool struct {
	tasks      chan *poolTask
	closed     chan struct{} // closed by Close: stop accepting work
	terminated chan struct{} // closed after every worker has exited
	once       sync.Once
	wg         sync.WaitGroup

	size      int
	clock     sim.Clock
	busy      *Gauge
	queued    *Gauge
	completed *Counter
	latency   *Histogram
}

type poolTask struct {
	ctx  context.Context
	fn   func(context.Context) (any, error)
	done chan poolResult
	// wait spans the time between Submit and a worker picking the task
	// up; run() ends it and opens the sibling pool.run span around fn.
	wait *obs.Span
}

type poolResult struct {
	value any
	err   error
}

// NewPool starts size workers (size <= 0 selects GOMAXPROCS) and
// registers occupancy metrics on m (which may be nil). Latencies are
// measured on the real clock; NewPoolOn injects a different one.
func NewPool(size int, m *Metrics) *Pool { return NewPoolOn(size, m, sim.Real) }

// NewPoolOn is NewPool with the latency clock injected, so simulation
// tests control what the pool histogram (and everything priced from it,
// like Retry-After hints) observes.
func NewPoolOn(size int, m *Metrics, clk sim.Clock) *Pool {
	if size <= 0 {
		size = runtime.GOMAXPROCS(0)
	}
	if m == nil {
		m = NewMetrics()
	}
	p := &Pool{
		// A small queue smooths bursts; Submit still blocks (or times
		// out) when all workers are busy and the queue is full.
		tasks:      make(chan *poolTask, size),
		closed:     make(chan struct{}),
		terminated: make(chan struct{}),
		size:       size,
		clock:      sim.Or(clk),
		busy:       m.Gauge("pool.busy"),
		queued:     m.Gauge("pool.queued"),
		completed:  m.Counter("pool.completed"),
		latency:    m.Histogram("latency.pool"),
	}
	m.Gauge("pool.workers").Set(int64(size))
	p.wg.Add(size)
	for i := 0; i < size; i++ {
		go p.worker()
	}
	return p
}

// Size returns the worker count.
func (p *Pool) Size() int { return p.size }

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		select {
		case t := <-p.tasks:
			p.run(t)
		case <-p.closed:
			// Drain jobs that were queued before Close so no accepted
			// work is dropped.
			for {
				select {
				case t := <-p.tasks:
					p.run(t)
				default:
					return
				}
			}
		}
	}
}

func (p *Pool) run(t *poolTask) {
	p.queued.Dec()
	t.wait.End()
	// A job whose requester already gave up is not worth computing.
	if err := t.ctx.Err(); err != nil {
		t.done <- poolResult{err: err}
		return
	}
	p.busy.Inc()
	start := p.clock.Now()
	ctx, span := obs.Start(t.ctx, "pool.run")
	v, err := t.fn(ctx)
	span.End()
	p.latency.Observe(p.clock.Since(start))
	p.busy.Dec()
	p.completed.Inc()
	t.done <- poolResult{value: v, err: err}
}

// Submit runs fn on a pool worker and blocks until it completes, the
// context is cancelled while the job is still queued, or the pool is
// closed before the job is accepted. fn is responsible for honouring ctx
// once it is running.
func (p *Pool) Submit(ctx context.Context, fn func(context.Context) (any, error)) (any, error) {
	_, wait := obs.Start(ctx, "pool.wait")
	t := &poolTask{ctx: ctx, fn: fn, done: make(chan poolResult, 1), wait: wait}
	p.queued.Inc()
	select {
	case p.tasks <- t:
	case <-ctx.Done():
		p.queued.Dec()
		wait.End()
		return nil, ctx.Err()
	case <-p.closed:
		p.queued.Dec()
		wait.End()
		return nil, ErrPoolClosed
	}
	select {
	case r := <-t.done:
		return r.value, r.err
	case <-p.terminated:
		// Every worker has exited; if the job squeaked into the queue
		// during shutdown and was not drained, nobody will ever run it.
		select {
		case r := <-t.done:
			return r.value, r.err
		default:
			// Submit's increment is never matched by run(): the task
			// is abandoned, so account for it here.
			p.queued.Dec()
			wait.End()
			return nil, ErrPoolClosed
		}
	}
}

// Close stops accepting new jobs, lets queued and running jobs finish,
// and waits for every worker to exit. Idempotent.
func (p *Pool) Close() {
	p.once.Do(func() {
		close(p.closed)
		p.wg.Wait()
		close(p.terminated)
	})
	p.wg.Wait()
}
