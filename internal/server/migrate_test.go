package server

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"testing"

	"primecache/internal/keyspace"
	"primecache/internal/persist"
)

func newPersistServer(t *testing.T) (*Server, string) {
	t.Helper()
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	s, ts := newTestServer(t, Options{Persist: store})
	return s, ts.URL
}

func TestPersistExportRoutesNeedPersistTier(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/persist/export?owner=0-0")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("memory-only server answered export with %d, want 404 (route absent)", resp.StatusCode)
	}
}

// fullCircle is the owner parameter claiming the whole hash space.
const fullCircle = "0-0"

func TestPersistExportImportRoundTrip(t *testing.T) {
	src, srcURL := newPersistServer(t)
	dst, dstURL := newPersistServer(t)

	want := map[string]string{}
	for i := 0; i < 8; i++ {
		k, v := fmt.Sprintf("job-key-%d", i), fmt.Sprintf("payload-%d", i)
		if err := src.Persist().Put(context.Background(), k, []byte(v)); err != nil {
			t.Fatal(err)
		}
		want[k] = v
	}

	resp, err := http.Get(srcURL + "/v1/persist/export?owner=" + fullCircle)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("export Content-Type %q", ct)
	}
	frames, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	iresp, err := http.Post(dstURL+"/v1/persist/import", "application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	defer iresp.Body.Close()
	if iresp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(iresp.Body)
		t.Fatalf("import status %d: %s", iresp.StatusCode, body)
	}
	for k, v := range want {
		got, ok := dst.Persist().Get(k)
		if !ok || string(got) != v {
			t.Fatalf("key %s after import: %q (ok=%v), want %q", k, got, ok, v)
		}
	}
}

// TestPersistExportFiltersByOwner: only keys hashing into the owner
// arcs travel — the property the join migration relies on to move
// exactly the joiner's shard.
func TestPersistExportFiltersByOwner(t *testing.T) {
	src, srcURL := newPersistServer(t)
	keys := make([]string, 16)
	for i := range keys {
		keys[i] = fmt.Sprintf("owned-key-%02d", i)
		if err := src.Persist().Put(context.Background(), keys[i], []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// An arc covering exactly the first key's hash point.
	h := keyspace.Hash(keys[0])
	owner := keyspace.Ranges{{Lo: h - 1, Hi: h}}

	resp, err := http.Get(srcURL + "/v1/persist/export?owner=" + owner.String())
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fr := persist.NewFrameReader(resp.Body)
	var got []string
	for {
		k, _, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, k)
	}
	for _, k := range got {
		if !owner.ContainsKey(k) {
			t.Fatalf("export leaked key %s outside the owner arcs", k)
		}
	}
	if len(got) == 0 || got[0] != keys[0] {
		t.Fatalf("export of the arc around %s returned %v", keys[0], got)
	}
}

func TestPersistExportRejectsBadOwner(t *testing.T) {
	_, url := newPersistServer(t)
	for _, owner := range []string{"", "garbage", "1-2-3", "10-"} {
		resp, err := http.Get(url + "/v1/persist/export?owner=" + owner)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("owner=%q: status %d, want 400", owner, resp.StatusCode)
		}
	}
}

func TestPersistImportRejectsCorruptStream(t *testing.T) {
	dst, url := newPersistServer(t)
	var buf bytes.Buffer
	if err := persist.WriteFrame(&buf, "good-key", []byte("good")); err != nil {
		t.Fatal(err)
	}
	frames := buf.Bytes()
	frames = append(frames, 0xde, 0xad) // trailing garbage: torn frame

	resp, err := http.Post(url+"/v1/persist/import", "application/octet-stream", bytes.NewReader(frames))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("torn import stream answered %d, want 400", resp.StatusCode)
	}
	// Records decoded before the tear are durable — imports are
	// idempotent, so the caller simply retries the transfer.
	if _, ok := dst.Persist().Get("good-key"); !ok {
		t.Fatal("intact record preceding the tear was not stored")
	}
}
