package server

import (
	"bytes"
	"net/http"
	"sort"

	"primecache/internal/obs"
)

// promContentType is the Prometheus text exposition format version the
// /metrics endpoints speak.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromFamilies renders the registry as Prometheus metric families:
// every counter becomes vcached_<name>_total, every gauge
// vcached_<name>, and every latency histogram vcached_<name>_seconds
// with its full cumulative bucket ladder re-derived from the sparse
// snapshot (bounds converted from microseconds to seconds). An uptime
// gauge rides along. Names are sanitized into the Prometheus charset
// ('.' separators become '_').
func (m *Metrics) PromFamilies() []obs.Family {
	snap := m.Snapshot()
	fams := make([]obs.Family, 0, len(snap.Counters)+len(snap.Gauges)+len(snap.Latencies)+1)
	for _, name := range sortedKeys(snap.Counters) {
		fams = append(fams, obs.Family{
			Name:    "vcached_" + obs.MetricName(name) + "_total",
			Help:    "Monotonic counter " + name + ".",
			Kind:    obs.KindCounter,
			Samples: []obs.Sample{{Value: float64(snap.Counters[name])}},
		})
	}
	for _, name := range sortedKeys(snap.Gauges) {
		fams = append(fams, obs.Family{
			Name:    "vcached_" + obs.MetricName(name),
			Help:    "Gauge " + name + ".",
			Kind:    obs.KindGauge,
			Samples: []obs.Sample{{Value: float64(snap.Gauges[name])}},
		})
	}
	for _, name := range sortedKeys(snap.Latencies) {
		fams = append(fams, obs.Family{
			Name:    "vcached_" + obs.MetricName(name) + "_seconds",
			Help:    "Latency histogram " + name + " in seconds.",
			Kind:    obs.KindHistogram,
			Samples: []obs.Sample{{Hist: promHist(snap.Latencies[name])}},
		})
	}
	fams = append(fams, obs.Family{
		Name:    "vcached_uptime_seconds",
		Help:    "Seconds since the metrics registry was created.",
		Kind:    obs.KindGauge,
		Samples: []obs.Sample{{Value: snap.UptimeSeconds}},
	})
	return fams
}

// promHist converts one histogram snapshot into exposition form: the
// microsecond ladder re-derived by Cumulative, bounds scaled to
// seconds.
func promHist(s HistogramSnapshot) *obs.HistValue {
	uppersUs, cum := s.Cumulative()
	edges := make([]float64, len(uppersUs))
	for i, us := range uppersUs {
		edges[i] = float64(us) / 1e6
	}
	return &obs.HistValue{Edges: edges, CumCounts: cum, Sum: float64(s.SumUs) / 1e6}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// memoFamilies renders the memoizer's stats, which live outside the
// metric registry.
func memoFamilies(st MemoStats) []obs.Family {
	counter := func(name, help string, v uint64) obs.Family {
		return obs.Family{Name: name, Help: help, Kind: obs.KindCounter,
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	gauge := func(name, help string, v int) obs.Family {
		return obs.Family{Name: name, Help: help, Kind: obs.KindGauge,
			Samples: []obs.Sample{{Value: float64(v)}}}
	}
	return []obs.Family{
		counter("vcached_memo_hits_total", "Memoizer hits.", st.Hits),
		counter("vcached_memo_misses_total", "Memoizer misses.", st.Misses),
		counter("vcached_memo_evictions_total", "Memoizer LRU evictions.", st.Evictions),
		gauge("vcached_memo_entries", "Memoizer resident entries.", st.Entries),
		gauge("vcached_memo_capacity", "Memoizer capacity (0 when disabled).", st.Capacity),
	}
}

// handleMetrics serves the whole registry (plus memo stats, plus the
// vcached_persist_* families when the disk tier is enabled) in the
// Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	fams := append(s.metrics.PromFamilies(), memoFamilies(s.memo.Stats())...)
	if s.persist != nil {
		fams = append(fams, persistFamilies(s.persist.Stats())...)
	}
	var buf bytes.Buffer
	if err := obs.WriteProm(&buf, fams); err != nil {
		writeError(w, Errf(CodeInternal, "rendering metrics: %v", err))
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.Write(buf.Bytes())
}

// handleTraces serves the finished-trace ring; a structured not_found
// envelope when the server was built without a tracer.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		writeError(w, Errf(CodeNotFound, "tracing is not enabled on this server"))
		return
	}
	s.tracer.TracesHandler().ServeHTTP(w, r)
}
