package server

import (
	"context"
	"fmt"
	"math"
	"strconv"

	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/mersenne"
	"primecache/internal/obs"
	"primecache/internal/oracle"
	"primecache/internal/trace"
	"primecache/internal/vcm"
)

// evalChunk is how many references run between context checks, so a
// timed-out or cancelled job stops promptly without a per-access check.
const evalChunk = 1 << 16

// analyticMinRefs is the job size (passes × refs/pass) above which a
// strided sweep on a closed-form-capable organisation is answered
// analytically instead of simulated: below it, replay through the batch
// API is already fast and keeps the admission guard's replay cost
// proportionally trivial. Under shed pressure the server lowers the bar
// (see evalOpts.degrade).
const analyticMinRefs = 1 << 22

// evalOpts carries per-execution policy into runSimulate.
type evalOpts struct {
	// degrade allows qualifying strided/diagonal jobs below
	// analyticMinRefs to be answered by the closed form, flagged
	// Degraded, when the server is shedding load.
	degrade bool
}

// PartialError reports a simulation the context stopped mid-flight: the
// job burned Refs references and produced no result. It unwraps to the
// context's error so envelope mapping (timeout vs cancelled) still
// works; the server folds Refs into the /v1/stats partial-work
// counters.
type PartialError struct {
	Refs uint64
	Err  error
}

func (e *PartialError) Error() string {
	return fmt.Sprintf("server: job stopped after %d references: %v", e.Refs, e.Err)
}

func (e *PartialError) Unwrap() error { return e.Err }

// runSimulate executes one validated simulation job. Results are
// deterministic: the same request always produces byte-identical stats
// (the Random replacement policy is deterministically seeded, and the
// analytic path is guard-verified against replay, so pressure-driven
// degradation can flip only the degraded/analytic flags, never a
// number).
func runSimulate(ctx context.Context, req SimulateRequest, opt evalOpts) (*SimulateResponse, error) {
	req = req.Normalize()

	// Strided sweeps over prime- or direct-mapped organisations have a
	// closed form: answer huge ones (and, under pressure, any for which
	// the closed form is cheaper than simulating) in O(passes)
	// arithmetic, guarded by a replayed cross-check at admission.
	_, aspan := obs.Start(ctx, "eval.analytic")
	resp, err := trySimulateAnalytic(req, opt.degrade)
	aspan.SetAttr("hit", strconv.FormatBool(resp != nil))
	if resp != nil {
		aspan.SetAttr("degraded", strconv.FormatBool(resp.Degraded))
	}
	aspan.End()
	if err != nil {
		return nil, err
	} else if resp != nil {
		return resp, nil
	}

	// Strided and diagonal patterns on vector-capable organisations run
	// through the vector API so the prime cache's Figure-1 address unit
	// is exercised (mirroring cmd/vcachesim); everything else streams the
	// pattern through the batch API in fixed-size chunks — the trace is
	// never materialised, and the replay checks the context every
	// evalChunk references so a dead client stops burning CPU.
	if req.Pattern.Name == "strided" || req.Pattern.Name == "diagonal" {
		if vc, err := core.FromSpec(req.Cache); err == nil {
			return runSimulateVector(ctx, req, vc)
		}
	}
	sim, err := req.Cache.Build()
	if err != nil {
		return nil, err
	}
	_, rspan := obs.Start(ctx, "eval.replay")
	stats, refsDone, err := trace.ReplayPatternContext(ctx, sim, req.Pattern, req.Passes, evalChunk)
	rspan.SetAttr("refs", strconv.FormatUint(refsDone, 10))
	rspan.End()
	if err != nil {
		return nil, &PartialError{Refs: refsDone, Err: err}
	}
	resp = &SimulateResponse{
		Cache:       sim.Describe(),
		Spec:        req.Cache.String(),
		Pattern:     req.Pattern.String(),
		Passes:      req.Passes,
		RefsPerPass: int(refsDone) / req.Passes,
		Stats:       stats,
	}
	resp.HitRatio = resp.Stats.HitRatio()
	resp.MissRatio = resp.Stats.MissRatio()
	if v, ok := sim.(*cache.VictimCache); ok {
		vs := v.VictimStats()
		resp.Victim = &vs
	}
	return resp, nil
}

// trySimulateAnalytic answers a qualifying job via the closed-form
// strided-sweep model. It returns (nil, nil) when the job does not
// qualify — wrong pattern or organisation, too small to bother, model
// declined, or the admission cross-check failed (in which case the
// caller simulates normally, which is always correct). With degrade
// set, jobs below analyticMinRefs still qualify as long as the closed
// form (whose cost is dominated by the guard replay) is meaningfully
// cheaper than simulating; their responses carry Degraded.
func trySimulateAnalytic(req SimulateRequest, degrade bool) (*SimulateResponse, error) {
	p := req.Pattern
	var stride int64
	switch p.Name {
	case "strided":
		stride = p.Stride
	case "diagonal":
		stride = int64(p.LD) + 1
	default:
		return nil, nil
	}
	spec := req.Cache.Normalize()
	var sets int
	switch spec.Kind {
	case "prime":
		sets = 1<<spec.C - 1
	case "direct":
		sets = spec.Lines
	default:
		return nil, nil
	}
	refs := int64(p.N) * int64(req.Passes)
	degraded := false
	if refs < analyticMinRefs {
		if !degrade {
			return nil, nil
		}
		// Degraded path: only worth it when the guard replay (at most 2
		// passes over min(n, 2·sets+1) references) costs well under the
		// job itself; otherwise answering analytically sheds no load.
		guardRefs := int64(2 * (2*sets + 1))
		if refs <= 2*guardRefs {
			return nil, nil
		}
		degraded = true
	}
	if _, ok := cache.StridedSweepStats(spec, p.Start, stride, p.N, req.Passes, p.Stream); !ok {
		return nil, nil // model declines the full instance; skip the guard
	}
	// Admission guard: replay a shrunken instance of the same sweep —
	// same start, stride and stream, n capped at 2C+1 (covering the
	// n ≤ C and n > C regimes) and two passes — and require the closed
	// form to match it exactly. A model bug makes the job fall back to
	// full simulation rather than return wrong numbers.
	nGuard, passesGuard := p.N, req.Passes
	if lim := 2*sets + 1; nGuard > lim {
		nGuard = lim
	}
	if passesGuard > 2 {
		passesGuard = 2
	}
	if oracle.VerifyStridedAnalytic(spec, p.Start, stride, nGuard, passesGuard, p.Stream) != nil {
		return nil, nil
	}
	resp, err := simulateAnalytic(req, spec, stride)
	if resp != nil {
		resp.Degraded = degraded
	}
	return resp, err
}

// simulateAnalytic assembles the closed-form response for a sweep the
// caller has already qualified and guarded. It still returns (nil, nil)
// when the model itself declines the instance.
func simulateAnalytic(req SimulateRequest, spec cache.Spec, stride int64) (*SimulateResponse, error) {
	p := req.Pattern
	stats, ok := cache.StridedSweepStats(spec, p.Start, stride, p.N, req.Passes, p.Stream)
	if !ok {
		return nil, nil
	}
	sim, err := spec.Build()
	if err != nil {
		return nil, err
	}
	resp := &SimulateResponse{
		Cache:       sim.Describe(),
		Spec:        spec.String(),
		Pattern:     p.String(),
		Passes:      req.Passes,
		RefsPerPass: p.N,
		Stats:       stats,
		AdderSteps:  analyticAdderSteps(spec, p.Start, stride, p.N, req.Passes),
		Analytic:    true,
	}
	resp.HitRatio = resp.Stats.HitRatio()
	resp.MissRatio = resp.Stats.MissRatio()
	return resp, nil
}

// analyticAdderSteps reproduces, without running it, the address-unit
// cost the vector path charges a prime-mapped sweep: per evalChunk-sized
// LoadVector, one stride conversion, one start conversion, and one
// end-around addition per remaining element (see runSimulateVector and
// mersenne.AddressUnit). Non-prime organisations have no address unit.
func analyticAdderSteps(spec cache.Spec, start uint64, stride int64, n, passes int) uint64 {
	if spec.Kind != "prime" {
		return 0
	}
	mod, err := mersenne.NewPrime(spec.C)
	if err != nil {
		return 0
	}
	abs := stride
	if abs < 0 {
		abs = -abs
	}
	_, strideSteps := mod.ReduceSteps(uint64(abs))
	var perPass uint64
	cur := start
	for done := 0; done < n; done += evalChunk {
		k := n - done
		if k > evalChunk {
			k = evalChunk
		}
		_, startSteps := mod.ReduceSteps(cur)
		perPass += uint64(strideSteps) + uint64(startSteps) + uint64(k-1)
		cur += uint64(int64(k) * stride)
	}
	return perPass * uint64(passes)
}

// runSimulateVector drives strided/diagonal patterns through the vector
// front-end in chunks, checking the context between chunks; a stopped
// job reports its completed references via PartialError.
func runSimulateVector(ctx context.Context, req SimulateRequest, vc *core.VectorCache) (*SimulateResponse, error) {
	p := req.Pattern
	stride := p.Stride
	if p.Name == "diagonal" {
		stride = int64(p.LD) + 1
	}
	// One span for the whole vector drive: per-chunk spans would bloat a
	// big job's trace past the retention cap, so the chunk count rides
	// along as an attribute instead.
	_, vspan := obs.Start(ctx, "eval.vector")
	var refsDone uint64
	var chunks int
	for pass := 0; pass < req.Passes; pass++ {
		start := p.Start
		for done := 0; done < p.N; done += evalChunk {
			if err := ctx.Err(); err != nil {
				vspan.SetAttr("chunks", strconv.Itoa(chunks))
				vspan.End()
				return nil, &PartialError{Refs: refsDone, Err: err}
			}
			n := p.N - done
			if n > evalChunk {
				n = evalChunk
			}
			if _, err := vc.LoadVector(start, stride, n, p.Stream); err != nil {
				vspan.SetAttr("chunks", strconv.Itoa(chunks))
				vspan.End()
				return nil, err
			}
			refsDone += uint64(n)
			chunks++
			start += uint64(int64(n) * stride)
		}
	}
	vspan.SetAttr("chunks", strconv.Itoa(chunks))
	vspan.SetAttr("refs", strconv.FormatUint(refsDone, 10))
	vspan.End()
	resp := &SimulateResponse{
		Cache:       vc.Cache().Describe(),
		Spec:        req.Cache.String(),
		Pattern:     p.String(),
		Passes:      req.Passes,
		RefsPerPass: p.N,
		Stats:       vc.Stats(),
		AdderSteps:  vc.AdderSteps(),
	}
	resp.HitRatio = resp.Stats.HitRatio()
	resp.MissRatio = resp.Stats.MissRatio()
	return resp, nil
}

// machineWork converts a normalised ModelRequest into validated vcm
// parameter structs.
func (r ModelRequest) machineWork() (vcm.Machine, vcm.VCM, error) {
	mach := vcm.DefaultMachine(r.Banks, r.Tm)
	if err := mach.Validate(); err != nil {
		return mach, vcm.VCM{}, err
	}
	work := vcm.VCM{B: r.B, R: r.R, Pds: *r.Pds, P1S1: *r.P1, P1S2: *r.P1S2}
	if err := work.Validate(); err != nil {
		return mach, work, err
	}
	return mach, work, nil
}

// runModel evaluates the MM model and the CC model for the direct and
// prime geometries at one operating point — the service-side equivalent
// of one cmd/vcmodel invocation.
func runModel(req ModelRequest) (*ModelResponse, error) {
	req = req.Normalize()
	if err := req.Validate(Limits{}); err != nil {
		return nil, err
	}
	mach, work, err := req.machineWork()
	if err != nil {
		return nil, err
	}
	dg, pg := vcm.DirectGeom(req.C), vcm.PrimeGeom(req.C)
	b2 := int(math.Round(float64(work.B) * work.Pds))

	resp := &ModelResponse{
		Banks: req.Banks, Tm: req.Tm, B: work.B, R: work.R,
		Pds: work.Pds, P1: work.P1S1, P1S2: work.P1S2, N: req.N, C: req.C,
		MM: ModelMachine{
			SelfInterference1: vcm.IsM(mach, work.P1S1),
			SelfInterference2: vcm.IsM(mach, work.P1S2),
			CrossInterference: vcm.IcM(mach),
			TElemt:            vcm.TElemtMM(mach, work),
			TBlock:            vcm.TBlockMM(mach, work),
			Total:             vcm.TotalMM(mach, work, req.N),
			CyclesPerResult:   vcm.CyclesPerResultMM(mach, work, req.N),
		},
	}
	for _, gc := range []struct {
		g   vcm.CacheGeom
		dst *ModelMachine
	}{{dg, &resp.Direct}, {pg, &resp.Prime}} {
		*gc.dst = ModelMachine{
			SelfInterference1: vcm.IsC(gc.g, mach, work.B, work.P1S1),
			SelfInterference2: vcm.IsC(gc.g, mach, b2, work.P1S2),
			CrossInterference: vcm.IcC(gc.g, mach, work.B, work.Pds),
			TElemt:            vcm.TElemtCC(gc.g, mach, work),
			TBlock:            vcm.TBlockMM(mach, work),
			Total:             vcm.TotalCC(gc.g, mach, work, req.N),
			CyclesPerResult:   vcm.CyclesPerResultCC(gc.g, mach, work, req.N),
			MissRatio:         vcm.MissRatioCC(gc.g, mach, work),
			HitRatio:          vcm.HitRatioCC(gc.g, mach, work),
		}
	}
	if resp.Prime.CyclesPerResult > 0 {
		resp.Speedup = resp.Direct.CyclesPerResult / resp.Prime.CyclesPerResult
	}
	return resp, nil
}
