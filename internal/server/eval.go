package server

import (
	"context"
	"math"

	"primecache/internal/cache"
	"primecache/internal/core"
	"primecache/internal/trace"
	"primecache/internal/vcm"
)

// evalChunk is how many references run between context checks, so a
// timed-out or cancelled job stops promptly without a per-access check.
const evalChunk = 1 << 16

// runSimulate executes one simulation job. Results are deterministic:
// the same request always produces byte-identical stats (the Random
// replacement policy is deterministically seeded).
func runSimulate(ctx context.Context, req SimulateRequest) (*SimulateResponse, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}

	// Strided and diagonal patterns on vector-capable organisations run
	// through the vector API so the prime cache's Figure-1 address unit
	// is exercised (mirroring cmd/vcachesim); everything else replays a
	// prebuilt trace.
	if req.Pattern.Name == "strided" || req.Pattern.Name == "diagonal" {
		if vc, err := core.FromSpec(req.Cache); err == nil {
			return runSimulateVector(ctx, req, vc)
		}
	}
	sim, err := req.Cache.Build()
	if err != nil {
		return nil, err
	}
	tr, err := req.Pattern.Build()
	if err != nil {
		return nil, err
	}
	for p := 0; p < req.Passes; p++ {
		for lo := 0; lo < len(tr); lo += evalChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			hi := lo + evalChunk
			if hi > len(tr) {
				hi = len(tr)
			}
			trace.Replay(sim, tr[lo:hi])
		}
	}
	resp := &SimulateResponse{
		Cache:       sim.Describe(),
		Spec:        req.Cache.String(),
		Pattern:     req.Pattern.String(),
		Passes:      req.Passes,
		RefsPerPass: len(tr),
		Stats:       sim.Stats(),
	}
	resp.HitRatio = resp.Stats.HitRatio()
	resp.MissRatio = resp.Stats.MissRatio()
	if v, ok := sim.(*cache.VictimCache); ok {
		vs := v.VictimStats()
		resp.Victim = &vs
	}
	return resp, nil
}

// runSimulateVector drives strided/diagonal patterns through the vector
// front-end in chunks, checking the context between chunks.
func runSimulateVector(ctx context.Context, req SimulateRequest, vc *core.VectorCache) (*SimulateResponse, error) {
	p := req.Pattern
	stride := p.Stride
	if p.Name == "diagonal" {
		stride = int64(p.LD) + 1
	}
	for pass := 0; pass < req.Passes; pass++ {
		start := p.Start
		for done := 0; done < p.N; done += evalChunk {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			n := p.N - done
			if n > evalChunk {
				n = evalChunk
			}
			if _, err := vc.LoadVector(start, stride, n, p.Stream); err != nil {
				return nil, err
			}
			start += uint64(int64(n) * stride)
		}
	}
	resp := &SimulateResponse{
		Cache:       vc.Cache().Describe(),
		Spec:        req.Cache.String(),
		Pattern:     p.String(),
		Passes:      req.Passes,
		RefsPerPass: p.N,
		Stats:       vc.Stats(),
		AdderSteps:  vc.AdderSteps(),
	}
	resp.HitRatio = resp.Stats.HitRatio()
	resp.MissRatio = resp.Stats.MissRatio()
	return resp, nil
}

// machineWork converts a normalised ModelRequest into validated vcm
// parameter structs.
func (r ModelRequest) machineWork() (vcm.Machine, vcm.VCM, error) {
	mach := vcm.DefaultMachine(r.Banks, r.Tm)
	if err := mach.Validate(); err != nil {
		return mach, vcm.VCM{}, err
	}
	work := vcm.VCM{B: r.B, R: r.R, Pds: *r.Pds, P1S1: *r.P1, P1S2: *r.P1S2}
	if err := work.Validate(); err != nil {
		return mach, work, err
	}
	return mach, work, nil
}

// runModel evaluates the MM model and the CC model for the direct and
// prime geometries at one operating point — the service-side equivalent
// of one cmd/vcmodel invocation.
func runModel(req ModelRequest) (*ModelResponse, error) {
	req = req.Normalize()
	if err := req.Validate(); err != nil {
		return nil, err
	}
	mach, work, err := req.machineWork()
	if err != nil {
		return nil, err
	}
	dg, pg := vcm.DirectGeom(req.C), vcm.PrimeGeom(req.C)
	b2 := int(math.Round(float64(work.B) * work.Pds))

	resp := &ModelResponse{
		Banks: req.Banks, Tm: req.Tm, B: work.B, R: work.R,
		Pds: work.Pds, P1: work.P1S1, P1S2: work.P1S2, N: req.N, C: req.C,
		MM: ModelMachine{
			SelfInterference1: vcm.IsM(mach, work.P1S1),
			SelfInterference2: vcm.IsM(mach, work.P1S2),
			CrossInterference: vcm.IcM(mach),
			TElemt:            vcm.TElemtMM(mach, work),
			TBlock:            vcm.TBlockMM(mach, work),
			Total:             vcm.TotalMM(mach, work, req.N),
			CyclesPerResult:   vcm.CyclesPerResultMM(mach, work, req.N),
		},
	}
	for _, gc := range []struct {
		g   vcm.CacheGeom
		dst *ModelMachine
	}{{dg, &resp.Direct}, {pg, &resp.Prime}} {
		*gc.dst = ModelMachine{
			SelfInterference1: vcm.IsC(gc.g, mach, work.B, work.P1S1),
			SelfInterference2: vcm.IsC(gc.g, mach, b2, work.P1S2),
			CrossInterference: vcm.IcC(gc.g, mach, work.B, work.Pds),
			TElemt:            vcm.TElemtCC(gc.g, mach, work),
			TBlock:            vcm.TBlockMM(mach, work),
			Total:             vcm.TotalCC(gc.g, mach, work, req.N),
			CyclesPerResult:   vcm.CyclesPerResultCC(gc.g, mach, work, req.N),
			MissRatio:         vcm.MissRatioCC(gc.g, mach, work),
			HitRatio:          vcm.HitRatioCC(gc.g, mach, work),
		}
	}
	if resp.Prime.CyclesPerResult > 0 {
		resp.Speedup = resp.Direct.CyclesPerResult / resp.Prime.CyclesPerResult
	}
	return resp, nil
}
