package server

import (
	"io"
	"net/http"
	"strconv"

	"primecache/internal/keyspace"
	"primecache/internal/obs"
	"primecache/internal/persist"
)

// Warm-state migration endpoints. Both are registered only on servers
// with a persist tier: a memory-only node has no durable state worth
// moving, and keeping the routes off such servers keeps their metric
// surface unchanged.
//
//	GET  /v1/persist/export?owner=lo-hi[,lo-hi...]
//	POST /v1/persist/import
//
// The export body is a concatenation of persist record frames (the
// store's on-disk framing on the wire: length-prefixed, CRC-checked);
// the owner parameter names the ring arcs — in keyspace positions —
// whose keys the caller now owns. Import reads the same stream and
// writes each record through the persist tier, so a freshly joined
// node answers its first real request memoized.

// ExportStatsResponse is the import endpoint's summary body.
type ExportStatsResponse struct {
	// Imported counts records written through the persist tier.
	Imported int64 `json:"imported"`
	// Bytes counts imported value bytes.
	Bytes int64 `json:"bytes"`
}

// handlePersistExport streams every persisted record whose key hashes
// into the requested owner arcs. The stream is sorted by key and each
// frame re-verifies its CRC on read, so a migration either delivers
// bytes the disk proved intact or stops short — never silent garbage.
func (s *Server) handlePersistExport(w http.ResponseWriter, r *http.Request) {
	owner := r.URL.Query().Get("owner")
	ranges, err := keyspace.ParseRanges(owner)
	if err != nil {
		writeError(w, Errf(CodeInvalidRequest, "owner parameter: %v", err))
		return
	}
	_, span := obs.Start(r.Context(), "persist.export", obs.String("owner", owner))
	defer span.End()
	w.Header().Set("Content-Type", "application/octet-stream")
	var keys, bytes int64
	werr := s.persist.Export(ranges.ContainsKey, func(key string, value []byte) error {
		keys++
		bytes += int64(len(value))
		return persist.WriteFrame(w, key, value)
	})
	// Headers are long gone once the first frame is written: a mid-stream
	// write error can only truncate the stream, which the importer's
	// frame reader detects exactly like a torn log tail.
	span.SetAttr("keys", strconv.FormatInt(keys, 10))
	if werr != nil {
		s.metrics.Counter("persist.exportErrors").Inc()
		return
	}
	s.metrics.Counter("persist.exportedKeys").Add(uint64(keys))
	s.metrics.Counter("persist.exportedBytes").Add(uint64(bytes))
}

// handlePersistImport reads a frame stream and writes each record
// through the persist tier. Records are durable before the 200 is
// written; a corrupt or truncated stream fails the call after the
// records already decoded (imports are idempotent — re-running one
// re-puts the same keys).
func (s *Server) handlePersistImport(w http.ResponseWriter, r *http.Request) {
	_, span := obs.Start(r.Context(), "persist.import")
	defer span.End()
	fr := persist.NewFrameReader(r.Body)
	var resp ExportStatsResponse
	for {
		key, value, err := fr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			s.metrics.Counter("persist.importErrors").Inc()
			writeError(w, Errf(CodeInvalidRequest, "import stream after %d records: %v", resp.Imported, err))
			return
		}
		if err := s.persist.Put(r.Context(), key, value); err != nil {
			s.metrics.Counter("persist.importErrors").Inc()
			writeError(w, Errf(CodeInternal, "storing imported record: %v", err))
			return
		}
		resp.Imported++
		resp.Bytes += int64(len(value))
	}
	span.SetAttr("keys", strconv.FormatInt(resp.Imported, 10))
	s.metrics.Counter("persist.importedKeys").Add(uint64(resp.Imported))
	s.metrics.Counter("persist.importedBytes").Add(uint64(resp.Bytes))
	writeJSON(w, http.StatusOK, resp)
}
