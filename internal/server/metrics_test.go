package server

import (
	"math"
	"sync"
	"testing"
	"time"

	"primecache/internal/sim"
)

// TestHistogramQuantileEdges table-drives the quantile estimator
// through its boundary behaviour: empty histograms, a single sample,
// out-of-range q, and overflow-bucket observations. The hedge and
// Retry-After pricing both consume these values, so "0 on empty" and
// "finite on overflow" are load-bearing.
func TestHistogramQuantileEdges(t *testing.T) {
	overflow := histBuckets[len(histBuckets)-1] * 316 / 100
	cases := []struct {
		name    string
		observe []time.Duration
		q       float64
		want    int64
	}{
		{name: "empty p95", observe: nil, q: 0.95, want: 0},
		{name: "empty p0", observe: nil, q: 0, want: 0},
		{name: "single sample p95", observe: []time.Duration{50 * time.Microsecond}, q: 0.95, want: 100},
		{name: "single sample p0 still counts it", observe: []time.Duration{50 * time.Microsecond}, q: 0, want: 100},
		{name: "q above 1 clamps", observe: []time.Duration{50 * time.Microsecond}, q: 2.5, want: 100},
		{name: "q below 0 clamps", observe: []time.Duration{50 * time.Microsecond}, q: -1, want: 100},
		{
			name:    "p50 splits buckets",
			observe: []time.Duration{50 * time.Microsecond, 50 * time.Microsecond, 50 * time.Microsecond, 5 * time.Millisecond},
			q:       0.5,
			want:    100,
		},
		{
			name:    "p95 lands in the slow tail",
			observe: append(manyFast(10), 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond, 5*time.Millisecond),
			q:       0.95,
			want:    10_000,
		},
		{name: "overflow bucket reports finite bound", observe: []time.Duration{20 * time.Second}, q: 0.95, want: overflow},
		{name: "zero duration lands in first bucket", observe: []time.Duration{0}, q: 0.5, want: 100},
		{name: "negative duration clamps into first bucket", observe: []time.Duration{-time.Second}, q: 0.5, want: 100},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			for _, d := range tc.observe {
				h.Observe(d)
			}
			if got := h.Snapshot().QuantileUs(tc.q); got != tc.want {
				t.Errorf("QuantileUs(%v) = %d, want %d", tc.q, got, tc.want)
			}
		})
	}
}

func manyFast(n int) []time.Duration {
	out := make([]time.Duration, n)
	for i := range out {
		out[i] = 50 * time.Microsecond
	}
	return out
}

// TestHistogramSnapshotStats checks the count/mean bookkeeping,
// including the empty case (mean must be 0, not NaN — it is serialized
// to JSON, which rejects NaN).
func TestHistogramSnapshotStats(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.MeanUs != 0 || len(s.Buckets) != 0 {
		t.Errorf("empty snapshot = %+v, want zero values", s)
	}
	if math.IsNaN(s.MeanUs) {
		t.Error("empty histogram mean is NaN; /v1/stats would fail to encode")
	}

	h.Observe(100 * time.Microsecond)
	h.Observe(300 * time.Microsecond)
	s = h.Snapshot()
	if s.Count != 2 {
		t.Errorf("count = %d, want 2", s.Count)
	}
	if s.MeanUs != 200 {
		t.Errorf("mean = %v µs, want 200", s.MeanUs)
	}
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != s.Count {
		t.Errorf("bucket counts sum to %d, want %d — observations dropped", total, s.Count)
	}
}

// TestCounterOverflow pins wraparound semantics: the counter is a
// uint64 that wraps modulo 2^64 rather than saturating or panicking,
// so rate computations over a wrap see one absurd sample instead of a
// stuck counter.
func TestCounterOverflow(t *testing.T) {
	var c Counter
	c.Add(math.MaxUint64)
	if got := c.Value(); got != math.MaxUint64 {
		t.Fatalf("Value() = %d, want MaxUint64", got)
	}
	c.Inc()
	if got := c.Value(); got != 0 {
		t.Errorf("Value() after overflow = %d, want wrap to 0", got)
	}
	c.Add(5)
	if got := c.Value(); got != 5 {
		t.Errorf("Value() = %d, want 5", got)
	}
}

// TestGaugeBelowZero: a gauge may legitimately go negative during
// teardown races; it must count back up consistently.
func TestGaugeBelowZero(t *testing.T) {
	var g Gauge
	g.Dec()
	if got := g.Value(); got != -1 {
		t.Errorf("Value() = %d, want -1", got)
	}
	g.Inc()
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("Value() = %d, want 42", got)
	}
}

// TestMetricsConcurrentObserveAndSnapshot hammers one registry with
// concurrent writers on every metric type while readers snapshot it.
// Run under -race this is the data-race proof for the lock-free metric
// paths; the invariant checked is conservation — nothing observed is
// ever lost once the writers are done.
func TestMetricsConcurrentObserveAndSnapshot(t *testing.T) {
	m := NewMetrics()
	const writers = 8
	const perWriter = 1000

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers: snapshot continuously while writes are in flight; the
	// race detector proves snapshots never tear a metric's memory.
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = m.Snapshot()
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for i := 0; i < perWriter; i++ {
				m.Counter("hits").Inc()
				m.Gauge("inflight").Inc()
				m.Histogram("latency").Observe(time.Duration(i) * time.Microsecond)
				m.Gauge("inflight").Dec()
			}
		}()
	}
	writerWG.Wait()
	close(stop)
	readerWG.Wait()

	s := m.Snapshot()
	if got := s.Counters["hits"]; got != writers*perWriter {
		t.Errorf("hits = %d, want %d", got, writers*perWriter)
	}
	if got := s.Gauges["inflight"]; got != 0 {
		t.Errorf("inflight = %d at rest, want 0", got)
	}
	hs := s.Latencies["latency"]
	if hs.Count != writers*perWriter {
		t.Errorf("latency count = %d, want %d", hs.Count, writers*perWriter)
	}
	var total uint64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != hs.Count {
		t.Errorf("bucket sum %d != count %d — an observation was lost", total, hs.Count)
	}
}

// TestMetricsUptimeOnVirtualClock: uptime is measured on the injected
// clock, so a simulation that advances virtual time sees it reflected
// without any wall time passing.
func TestMetricsUptimeOnVirtualClock(t *testing.T) {
	vclk := sim.NewVirtual()
	m := NewMetricsOn(vclk)
	if up := m.Snapshot().UptimeSeconds; up != 0 {
		t.Errorf("uptime = %v before any advance, want 0", up)
	}
	vclk.Advance(90 * time.Second)
	if up := m.Snapshot().UptimeSeconds; up != 90 {
		t.Errorf("uptime = %v after advancing 90s, want 90", up)
	}
}
