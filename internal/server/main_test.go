package server

import (
	"testing"

	"primecache/internal/sim/leak"
)

// TestMain asserts the whole suite quiesces: no pool worker, drain
// goroutine, or fault timer may outlive the tests that started it.
func TestMain(m *testing.M) { leak.Main(m) }
