// Package server implements vcached, a long-running HTTP/JSON service
// that evaluates cache simulations and VCM analytical sweeps over the
// shared internal/* core. Endpoints:
//
//	POST /v1/simulate  — run a synthetic pattern through one cache organisation
//	POST /v1/model     — evaluate the MM/CC analytic models at one operating point
//	POST /v1/sweep     — a batch of simulate/model jobs fanned out over a worker pool
//	GET  /v1/healthz   — liveness
//	GET  /v1/stats     — metrics registry, memoizer and worker-pool counters
//
// Identical requests are computed once (an LRU memoizer keyed on the
// canonical form of the request), work is bounded by a GOMAXPROCS-sized
// worker pool, and shutdown drains in-flight requests.
package server

import (
	"fmt"
	"strconv"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// Limits is the one set of admission bounds every request is validated
// against. The server owns a single Limits value (configurable via
// cmd/vcached flags) and passes it down every Validate path, so the
// bounds logic lives here and nowhere else.
type Limits struct {
	// MaxRefsPerJob bounds the accesses one simulate job may issue
	// (passes × refs/pass), so a single request cannot pin a worker
	// indefinitely. 0 selects the default (64Mi references).
	MaxRefsPerJob int
	// MaxSweepJobs bounds one sweep batch; 0 selects the default (4096).
	MaxSweepJobs int
	// MaxBodyBytes caps request bodies; 0 selects the default (8 MiB).
	MaxBodyBytes int64
}

// DefaultLimits returns the stock bounds.
func DefaultLimits() Limits {
	return Limits{MaxRefsPerJob: 64 << 20, MaxSweepJobs: 4096, MaxBodyBytes: 8 << 20}
}

// withDefaults fills zero fields from DefaultLimits.
func (l Limits) withDefaults() Limits {
	d := DefaultLimits()
	if l.MaxRefsPerJob == 0 {
		l.MaxRefsPerJob = d.MaxRefsPerJob
	}
	if l.MaxSweepJobs == 0 {
		l.MaxSweepJobs = d.MaxSweepJobs
	}
	if l.MaxBodyBytes == 0 {
		l.MaxBodyBytes = d.MaxBodyBytes
	}
	return l
}

// SimulateRequest asks for one synthetic pattern to be run through one
// cache organisation.
type SimulateRequest struct {
	// Cache describes the organisation (see cache.Spec).
	Cache cache.Spec `json:"cache"`
	// Pattern describes the access pattern (see trace.Pattern).
	Pattern trace.Pattern `json:"pattern"`
	// Passes is the number of sweeps over the pattern (default 2).
	Passes int `json:"passes,omitempty"`
}

// Normalize fills defaults.
func (r SimulateRequest) Normalize() SimulateRequest {
	r.Cache = r.Cache.Normalize()
	r.Pattern = r.Pattern.Normalize()
	if r.Passes == 0 {
		r.Passes = 2
	}
	return r
}

// Validate checks the request against the server's limits, mapping bad
// configs to invalid_request errors and oversized jobs to job_too_large.
func (r SimulateRequest) Validate(lim Limits) error {
	lim = lim.withDefaults()
	r = r.Normalize()
	if err := r.Cache.Validate(); err != nil {
		return Errf(CodeInvalidRequest, "%v", err)
	}
	if err := r.Pattern.Validate(); err != nil {
		return Errf(CodeInvalidRequest, "%v", err)
	}
	if r.Passes < 1 {
		return Errf(CodeInvalidRequest, "server: passes must be ≥ 1, got %d", r.Passes)
	}
	// Bound the job arithmetically before materialising anything: a
	// request like strided n=2e9 must be rejected here, not after a
	// multi-gigabyte trace allocation. The passes check divides rather
	// than multiplies so huge values cannot overflow past the cap.
	if r.Passes > lim.MaxRefsPerJob {
		return Errf(CodeJobTooLarge, "server: passes %d exceeds limit %d", r.Passes, lim.MaxRefsPerJob)
	}
	refs := r.Pattern.RefCount()
	if refs > lim.MaxRefsPerJob {
		return Errf(CodeJobTooLarge, "server: pattern yields %d references per pass, limit %d", refs, lim.MaxRefsPerJob)
	}
	if refs > 0 && r.Passes > lim.MaxRefsPerJob/refs {
		return Errf(CodeJobTooLarge, "server: job would issue %d passes × %d references, limit %d", r.Passes, refs, lim.MaxRefsPerJob)
	}
	return nil
}

// Key returns the canonical memoization key: equal requests (after
// normalisation) produce equal keys.
func (r SimulateRequest) Key() string {
	r = r.Normalize()
	return "simulate|" + r.Cache.String() + "|" + r.Pattern.String() + "|passes=" + strconv.Itoa(r.Passes)
}

// SimulateResponse reports the full stats of one simulation.
type SimulateResponse struct {
	Cache       string      `json:"cache"`
	Spec        string      `json:"spec"`
	Pattern     string      `json:"pattern"`
	Passes      int         `json:"passes"`
	RefsPerPass int         `json:"refsPerPass"`
	Stats       cache.Stats `json:"stats"`
	HitRatio    float64     `json:"hitRatio"`
	MissRatio   float64     `json:"missRatio"`
	// AdderSteps counts the Mersenne address unit's c-bit end-around
	// additions (prime mapping driven through the vector API only).
	AdderSteps uint64 `json:"adderSteps,omitempty"`
	// Analytic reports the stats were computed by the closed-form
	// strided-sweep model (cross-checked against replay at admission)
	// instead of per-reference simulation.
	Analytic bool `json:"analytic,omitempty"`
	// Degraded reports the analytic answer was served below the normal
	// size cutoff because the server was shedding load; the stats remain
	// byte-compatible with the simulated schema (same guard applies).
	Degraded bool `json:"degraded,omitempty"`
	// Victim reports the victim-buffer counters for kind "victim".
	Victim *cache.VictimStats `json:"victim,omitempty"`
}

// ModelRequest asks for one evaluation of the paper's analytic models.
type ModelRequest struct {
	// Banks is M, the number of interleaved banks (power of two,
	// default 64); Tm the memory access time in cycles (default 32).
	Banks int `json:"banks,omitempty"`
	Tm    int `json:"tm,omitempty"`
	// B is the blocking factor (default 4096); R the reuse factor
	// (default B).
	B int `json:"b,omitempty"`
	R int `json:"r,omitempty"`
	// Pds is the double-stream probability; P1 the unit-stride
	// probability applied to both streams unless P1S2 overrides the
	// second. Negative values select the defaults (0.25).
	Pds  *float64 `json:"pds,omitempty"`
	P1   *float64 `json:"p1,omitempty"`
	P1S2 *float64 `json:"p1s2,omitempty"`
	// N is the total problem size (default 2^20).
	N int `json:"n,omitempty"`
	// C is the cache-size exponent: direct-mapped 2^c lines, prime
	// 2^c − 1 (default 13).
	C uint `json:"c,omitempty"`
}

// Normalize fills defaults.
func (r ModelRequest) Normalize() ModelRequest {
	if r.Banks == 0 {
		r.Banks = 64
	}
	if r.Tm == 0 {
		r.Tm = 32
	}
	if r.B == 0 {
		r.B = 4096
	}
	if r.R == 0 {
		r.R = r.B
	}
	if r.Pds == nil {
		r.Pds = f64(0.25)
	}
	if r.P1 == nil {
		r.P1 = f64(0.25)
	}
	if r.P1S2 == nil {
		r.P1S2 = f64(*r.P1)
	}
	if r.N == 0 {
		r.N = 1 << 20
	}
	if r.C == 0 {
		r.C = 13
	}
	return r
}

func f64(v float64) *float64 { return &v }

// Validate checks the request. Model evaluations are O(1), so no limit
// applies, but the signature matches the one validation path every job
// type shares.
func (r ModelRequest) Validate(Limits) error {
	r = r.Normalize()
	if _, _, err := r.machineWork(); err != nil {
		return Errf(CodeInvalidRequest, "%v", err)
	}
	if r.N <= 0 {
		return Errf(CodeInvalidRequest, "server: n must be positive, got %d", r.N)
	}
	if r.C < 2 || r.C > 31 {
		return Errf(CodeInvalidRequest, "server: c must be in [2, 31], got %d", r.C)
	}
	return nil
}

// Key returns the canonical memoization key.
func (r ModelRequest) Key() string {
	r = r.Normalize()
	return fmt.Sprintf("model|banks=%d,tm=%d,b=%d,r=%d,pds=%g,p1=%g,p1s2=%g,n=%d,c=%d",
		r.Banks, r.Tm, r.B, r.R, *r.Pds, *r.P1, *r.P1S2, r.N, r.C)
}

// ModelMachine is one column of the vcmodel table: every intermediate
// quantity of the analytic model for one machine.
type ModelMachine struct {
	SelfInterference1 float64 `json:"selfInterference1"`
	SelfInterference2 float64 `json:"selfInterference2"`
	CrossInterference float64 `json:"crossInterference"`
	TElemt            float64 `json:"tElemt"`
	TBlock            float64 `json:"tBlock"`
	Total             float64 `json:"total"`
	CyclesPerResult   float64 `json:"cyclesPerResult"`
	// MissRatio and HitRatio are the model's cache-level predictions;
	// zero for the cacheless MM machine.
	MissRatio float64 `json:"missRatio,omitempty"`
	HitRatio  float64 `json:"hitRatio,omitempty"`
}

// ModelResponse reports the three machines side by side, like cmd/vcmodel.
type ModelResponse struct {
	Banks   int          `json:"banks"`
	Tm      int          `json:"tm"`
	B       int          `json:"b"`
	R       int          `json:"r"`
	Pds     float64      `json:"pds"`
	P1      float64      `json:"p1"`
	P1S2    float64      `json:"p1s2"`
	N       int          `json:"n"`
	C       uint         `json:"c"`
	MM      ModelMachine `json:"mm"`
	Direct  ModelMachine `json:"ccDirect"`
	Prime   ModelMachine `json:"ccPrime"`
	Speedup float64      `json:"primeOverDirect"`
}

// SweepJob is one element of a sweep batch: exactly one of Simulate or
// Model must be set.
type SweepJob struct {
	Simulate *SimulateRequest `json:"simulate,omitempty"`
	Model    *ModelRequest    `json:"model,omitempty"`
}

// Validate checks the job.
func (j SweepJob) Validate(lim Limits) error {
	switch {
	case j.Simulate != nil && j.Model != nil:
		return Errf(CodeInvalidRequest, "server: sweep job sets both simulate and model")
	case j.Simulate != nil:
		return j.Simulate.Validate(lim)
	case j.Model != nil:
		return j.Model.Validate(lim)
	default:
		return Errf(CodeInvalidRequest, "server: sweep job sets neither simulate nor model")
	}
}

// Key returns the canonical memoization key of the underlying job.
func (j SweepJob) Key() string {
	if j.Simulate != nil {
		return j.Simulate.Key()
	}
	if j.Model != nil {
		return j.Model.Key()
	}
	return "invalid"
}

// SweepRequest is a batch of jobs fanned out across the worker pool.
type SweepRequest struct {
	Jobs []SweepJob `json:"jobs"`
}

// Validate checks every job, reporting the first failure with its index.
func (r SweepRequest) Validate(lim Limits) error {
	lim = lim.withDefaults()
	if len(r.Jobs) == 0 {
		return Errf(CodeInvalidRequest, "server: sweep has no jobs")
	}
	if len(r.Jobs) > lim.MaxSweepJobs {
		return Errf(CodeJobTooLarge, "server: sweep has %d jobs, limit %d", len(r.Jobs), lim.MaxSweepJobs)
	}
	for i, j := range r.Jobs {
		if err := j.Validate(lim); err != nil {
			ae := asAPIError(err)
			return Errf(ae.Code, "job %d: %s", i, ae.Message)
		}
	}
	return nil
}

// SweepResult is one job's outcome, delivered in input order.
type SweepResult struct {
	Index    int               `json:"index"`
	Simulate *SimulateResponse `json:"simulate,omitempty"`
	Model    *ModelResponse    `json:"model,omitempty"`
	Error    string            `json:"error,omitempty"`
	// ErrorCode is the machine code classifying Error, when set.
	ErrorCode ErrorCode `json:"errorCode,omitempty"`
	// Memoized reports the result was served from the memo cache.
	Memoized bool `json:"memoized"`
}
