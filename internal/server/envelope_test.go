package server_test

// External-package tests: these drive the service purely over HTTP the
// way the typed client does, so they double as a contract check of the
// unified error envelope — every machine code the API documents must be
// reachable and carry the documented status, shape, and headers.

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"primecache/internal/server"
)

// smallJob is a valid simulate body the fault-injection cases use.
const smallJob = `{"cache":{"kind":"prime","c":7},"pattern":{"name":"strided","stride":3,"n":4096},"passes":2}`

func postRaw(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestErrorEnvelopeEveryCode reaches each machine code over HTTP and
// checks the full contract: status derived from the code, the
// {"error":{...}} shape, a non-empty message, and (for overload) the
// Retry-After header mirroring retry_after_ms.
func TestErrorEnvelopeEveryCode(t *testing.T) {
	cases := []struct {
		name     string
		opts     server.Options
		shutdown bool
		body     string
		want     server.ErrorCode
		status   int
	}{
		{
			name:   "invalid_request",
			body:   `not json`,
			want:   server.CodeInvalidRequest,
			status: http.StatusBadRequest,
		},
		{
			name:   "job_too_large",
			body:   `{"pattern":{"name":"strided","n":2000000000}}`,
			want:   server.CodeJobTooLarge,
			status: http.StatusRequestEntityTooLarge,
		},
		{
			name: "overloaded",
			opts: server.Options{Faults: func(stage string, seq uint64) server.Fault {
				if stage == "admit" {
					return server.Fault{QueueFull: true}
				}
				return server.Fault{}
			}},
			body:   smallJob,
			want:   server.CodeOverloaded,
			status: http.StatusTooManyRequests,
		},
		{
			name:   "timeout",
			opts:   server.Options{RequestTimeout: 5 * time.Millisecond},
			body:   `{"cache":{"kind":"assoc","lines":131072,"ways":4},"pattern":{"name":"strided","stride":3,"n":1048576},"passes":50}`,
			want:   server.CodeTimeout,
			status: http.StatusGatewayTimeout,
		},
		{
			name: "cancelled",
			opts: server.Options{Faults: func(stage string, seq uint64) server.Fault {
				if stage == "compute" {
					return server.Fault{Err: context.Canceled}
				}
				return server.Fault{}
			}},
			body:   smallJob,
			want:   server.CodeCancelled,
			status: 499,
		},
		{
			name:     "shutting_down",
			shutdown: true,
			body:     smallJob,
			want:     server.CodeShuttingDown,
			status:   http.StatusServiceUnavailable,
		},
		{
			name: "internal",
			opts: server.Options{Faults: func(stage string, seq uint64) server.Fault {
				if stage == "compute" {
					return server.Fault{Err: errors.New("injected compute fault")}
				}
				return server.Fault{}
			}},
			body:   smallJob,
			want:   server.CodeInternal,
			status: http.StatusInternalServerError,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := server.New(tc.opts)
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()
			if tc.shutdown {
				if err := s.Shutdown(context.Background()); err != nil {
					t.Fatal(err)
				}
			} else {
				defer s.Shutdown(context.Background())
			}

			resp, body := postRaw(t, ts.URL+"/v1/simulate", tc.body)
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d: %s", resp.StatusCode, tc.status, body)
			}
			var env server.ErrorEnvelope
			if err := json.Unmarshal(body, &env); err != nil || env.Error == nil {
				t.Fatalf("body is not the unified envelope: %s", body)
			}
			if env.Error.Code != tc.want {
				t.Errorf("code = %q, want %q", env.Error.Code, tc.want)
			}
			if env.Error.Message == "" {
				t.Error("envelope message is empty")
			}
			if tc.want == server.CodeOverloaded {
				if env.Error.RetryAfterMs <= 0 {
					t.Errorf("overloaded envelope retry_after_ms = %d, want > 0", env.Error.RetryAfterMs)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Error("overloaded response missing Retry-After header")
				}
			} else if env.Error.RetryAfterMs != 0 {
				t.Errorf("%s envelope carries retry_after_ms = %d, want omitted", tc.want, env.Error.RetryAfterMs)
			}
		})
	}
}

// TestSweepPerJobErrorCodes: inside a sweep, per-job failures carry the
// same machine codes in SweepResult.ErrorCode while the batch itself
// still returns 200.
func TestSweepPerJobErrorCodes(t *testing.T) {
	s := server.New(server.Options{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Per-job validation happens before fan-out, so an invalid job fails
	// the whole batch with its code; a compute fault inside a valid batch
	// surfaces per job. Inject an internal fault on the first compute.
	faulty := server.New(server.Options{Workers: 2, Faults: func(stage string, seq uint64) server.Fault {
		if stage == "compute" && seq == 1 {
			return server.Fault{Err: errors.New("injected")}
		}
		return server.Fault{}
	}})
	defer faulty.Shutdown(context.Background())
	fts := httptest.NewServer(faulty.Handler())
	defer fts.Close()

	resp, body := postRaw(t, fts.URL+"/v1/sweep",
		`{"jobs":[{"model":{"banks":64}},{"model":{"banks":32}}]}`)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Results []server.SweepResult `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("%v: %s", err, body)
	}
	var failed, succeeded int
	for _, r := range out.Results {
		if r.Error != "" {
			failed++
			if r.ErrorCode != server.CodeInternal {
				t.Errorf("job %d errorCode = %q, want %q", r.Index, r.ErrorCode, server.CodeInternal)
			}
		} else {
			succeeded++
		}
	}
	if failed != 1 || succeeded != 1 {
		t.Errorf("failed=%d succeeded=%d, want 1 and 1: %s", failed, succeeded, body)
	}
}
