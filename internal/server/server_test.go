package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.pool.Close()
	})
	return s, ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
}

func TestSimulateEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "prime", C: 13},
		Pattern: trace.Pattern{Name: "strided", Stride: 512, N: 4096},
		Passes:  4,
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("simulate status = %d: %s", resp.StatusCode, body)
	}
	var out struct {
		SimulateResponse
		Memoized bool `json:"memoized"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Accesses != 4*4096 {
		t.Errorf("accesses = %d, want %d", out.Stats.Accesses, 4*4096)
	}
	// A prime-mapped cache has no conflicts on this sweep and the
	// Figure-1 address unit must have been exercised.
	if out.Stats.Conflict != 0 {
		t.Errorf("prime cache saw %d conflict misses on stride-512", out.Stats.Conflict)
	}
	if out.AdderSteps == 0 {
		t.Error("adderSteps = 0; vector path not exercised")
	}
	if out.Memoized {
		t.Error("first request reported memoized")
	}

	// The direct-mapped baseline must show heavy conflicts on the same
	// sweep — the paper's point, via HTTP.
	req.Cache = cache.Spec{Kind: "direct", Lines: 8192}
	resp, body = postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != 200 {
		t.Fatalf("simulate status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Stats.Conflict == 0 {
		t.Error("direct-mapped cache saw no conflicts on stride-512")
	}
}

func TestSimulateAllKinds(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for _, kind := range cache.SpecKinds() {
		req := SimulateRequest{
			Cache:   cache.Spec{Kind: kind, C: 5, Lines: 64, VictimLines: 4},
			Pattern: trace.Pattern{Name: "subblock", LD: 100, B1: 8, B2: 8},
		}
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != 200 {
			t.Errorf("%s: status %d: %s", kind, resp.StatusCode, body)
			continue
		}
		var out SimulateResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Stats.Accesses != 2*64 {
			t.Errorf("%s: accesses = %d, want 128", kind, out.Stats.Accesses)
		}
		if kind == "victim" && out.Victim == nil {
			t.Error("victim: response missing victim stats")
		}
	}
}

func TestModelEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, body := postJSON(t, ts.URL+"/v1/model", ModelRequest{Banks: 64, Tm: 64, B: 4096})
	if resp.StatusCode != 200 {
		t.Fatalf("model status = %d: %s", resp.StatusCode, body)
	}
	var out ModelResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	// Paper headline regime (t_m = M = 64): prime beats direct by ~3×
	// and the MM machine by more.
	if out.Speedup < 2 {
		t.Errorf("prime/direct speedup = %.2f, want > 2", out.Speedup)
	}
	if out.MM.CyclesPerResult <= out.Prime.CyclesPerResult {
		t.Errorf("MM CPR %.2f not worse than prime %.2f", out.MM.CyclesPerResult, out.Prime.CyclesPerResult)
	}
	if out.Prime.HitRatio <= out.Direct.HitRatio {
		t.Errorf("prime hit ratio %.3f not above direct %.3f", out.Prime.HitRatio, out.Direct.HitRatio)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		path string
		body string
		code ErrorCode
	}{
		{"/v1/simulate", `{"cache":{"kind":"bogus"}}`, CodeInvalidRequest},
		{"/v1/simulate", `{"cache":{"kind":"prime","c":4}}`, CodeInvalidRequest},
		{"/v1/simulate", `{"pattern":{"name":"fft","n":10,"b2":3}}`, CodeInvalidRequest},
		{"/v1/simulate", `{"passes":-1}`, CodeInvalidRequest},
		{"/v1/simulate", `{"pattern":{"name":"strided","n":2000000000}}`, CodeJobTooLarge},
		{"/v1/simulate", `{"pattern":{"name":"subblock","b1":1000000,"b2":1000000}}`, CodeJobTooLarge},
		{"/v1/simulate", `{"pattern":{"name":"strided","n":4096},"passes":1152921504606846976}`, CodeJobTooLarge},
		{"/v1/simulate", `{"unknown":1}`, CodeInvalidRequest},
		{"/v1/simulate", `not json`, CodeInvalidRequest},
		{"/v1/model", `{"banks":63}`, CodeInvalidRequest},
		{"/v1/model", `{"pds":1.5}`, CodeInvalidRequest},
		{"/v1/sweep", `{"jobs":[]}`, CodeInvalidRequest},
		{"/v1/sweep", `{"jobs":[{}]}`, CodeInvalidRequest},
		{"/v1/sweep", `{"jobs":[{"simulate":{},"model":{}}]}`, CodeInvalidRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := tc.code.HTTPStatus(); resp.StatusCode != want {
			t.Errorf("%s %s: status %d, want %d (%s)", tc.path, tc.body, resp.StatusCode, want, body)
			continue
		}
		var out ErrorEnvelope
		if err := json.Unmarshal(body, &out); err != nil || out.Error == nil {
			t.Errorf("%s %s: malformed error body %s", tc.path, tc.body, body)
			continue
		}
		if out.Error.Code != tc.code || out.Error.Message == "" {
			t.Errorf("%s %s: error body %+v, want code %q with a message", tc.path, tc.body, out.Error, tc.code)
		}
	}
}

// sweepJobs builds a mixed simulate/model batch whose results are
// deterministic.
func sweepJobs(n int) []SweepJob {
	jobs := make([]SweepJob, n)
	for i := range jobs {
		if i%2 == 0 {
			jobs[i] = SweepJob{Simulate: &SimulateRequest{
				Cache:   cache.Spec{Kind: "prime", C: 7},
				Pattern: trace.Pattern{Name: "strided", Stride: int64(1 + i%8), N: 512},
			}}
		} else {
			jobs[i] = SweepJob{Model: &ModelRequest{Banks: 64, Tm: 16 + i%4, B: 1024}}
		}
	}
	return jobs
}

// serialSweep evaluates the jobs one by one without the server, the
// reference for byte-for-byte comparison.
func serialSweep(t *testing.T, jobs []SweepJob) []SweepResult {
	t.Helper()
	out := make([]SweepResult, len(jobs))
	for i, j := range jobs {
		out[i] = SweepResult{Index: i}
		switch {
		case j.Simulate != nil:
			r, err := runSimulate(context.Background(), *j.Simulate, evalOpts{})
			if err != nil {
				t.Fatalf("serial job %d: %v", i, err)
			}
			out[i].Simulate = r
		case j.Model != nil:
			r, err := runModel(*j.Model)
			if err != nil {
				t.Fatalf("serial job %d: %v", i, err)
			}
			out[i].Model = r
		}
	}
	return out
}

// marshalResults renders results with the Memoized flag cleared, so
// memo-served and freshly computed runs compare equal.
func marshalResults(t *testing.T, rs []SweepResult) string {
	t.Helper()
	for i := range rs {
		rs[i].Memoized = false
	}
	b, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func decodeSweep(t *testing.T, body []byte) []SweepResult {
	t.Helper()
	var out struct {
		Results []SweepResult `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decoding sweep response: %v\n%s", err, body)
	}
	return out.Results
}

// TestConcurrentSweepMatchesSerial issues 32 concurrent /v1/sweep
// requests and verifies every response matches the serial evaluation
// byte for byte.
func TestConcurrentSweepMatchesSerial(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 8})
	jobs := sweepJobs(24)
	want := marshalResults(t, serialSweep(t, jobs))

	const clients = 32
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf, _ := json.Marshal(SweepRequest{Jobs: jobs})
			resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			bodies[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, body := range bodies {
		if body == nil {
			continue
		}
		results := decodeSweep(t, body)
		if len(results) != len(jobs) {
			t.Fatalf("client %d: %d results, want %d", i, len(results), len(jobs))
		}
		for k, r := range results {
			if r.Index != k {
				t.Fatalf("client %d: result %d has index %d (out of order)", i, k, r.Index)
			}
			if r.Error != "" {
				t.Fatalf("client %d job %d: %s", i, k, r.Error)
			}
		}
		if got := marshalResults(t, results); got != want {
			t.Errorf("client %d: concurrent sweep differs from serial evaluation\ngot:  %.200s\nwant: %.200s", i, got, want)
		}
	}
}

// TestMemoization proves identical back-to-back requests hit the memo
// cache, observable via /v1/stats counters.
func TestMemoization(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "direct", Lines: 1024},
		Pattern: trace.Pattern{Name: "strided", Stride: 64, N: 2048},
	}

	statsNow := func() StatsResponse {
		resp, err := http.Get(ts.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	before := statsNow()
	var outs [2]struct {
		SimulateResponse
		Memoized bool `json:"memoized"`
	}
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
		if resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &outs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if outs[0].Memoized {
		t.Error("first request served from memo")
	}
	if !outs[1].Memoized {
		t.Error("identical second request not served from memo")
	}
	if a, b := outs[0].SimulateResponse, outs[1].SimulateResponse; a != b {
		t.Errorf("memoized response differs from computed: %+v vs %+v", a, b)
	}
	after := statsNow()
	if hits := after.Memo.Hits - before.Memo.Hits; hits != 1 {
		t.Errorf("memo hits delta = %d, want 1", hits)
	}
	if after.Memo.Misses <= before.Memo.Misses {
		t.Error("memo misses did not advance on first request")
	}
	if after.Memo.HitRatio <= 0 {
		t.Error("memo hit ratio not surfaced")
	}
	if after.Metrics.Counters["requests.simulate"] < 2 {
		t.Errorf("requests.simulate = %d, want >= 2", after.Metrics.Counters["requests.simulate"])
	}
	if after.Pool.Workers <= 0 {
		t.Error("pool.workers not surfaced")
	}
}

// TestSweepMemoSharing: a sweep repeating one config computes it once
// and serves the rest from the memo.
func TestSweepMemoSharing(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	job := SweepJob{Model: &ModelRequest{Banks: 32, Tm: 48, B: 2048}}
	jobs := []SweepJob{job, job, job, job}
	resp, body := postJSON(t, ts.URL+"/v1/sweep", SweepRequest{Jobs: jobs})
	if resp.StatusCode != 200 {
		t.Fatalf("sweep status = %d: %s", resp.StatusCode, body)
	}
	results := decodeSweep(t, body)
	memoized := 0
	for _, r := range results {
		if r.Error != "" {
			t.Fatalf("job %d: %s", r.Index, r.Error)
		}
		if r.Memoized {
			memoized++
		}
	}
	if memoized == 0 {
		t.Error("no job in a repeated-config sweep was served from memo")
	}
	if s.memo.Stats().Hits == 0 {
		t.Error("memo counters saw no hits")
	}
}

// TestRequestTimeout: a job too large for the request timeout returns a
// structured 504 instead of hanging.
func TestRequestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{RequestTimeout: 5 * time.Millisecond})
	// A set-associative organisation: outside the analytic fast path, so
	// the job really simulates reference by reference.
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 1 << 17, Ways: 4},
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 1 << 20},
		Passes:  50,
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	var out ErrorEnvelope
	if err := json.Unmarshal(body, &out); err != nil || out.Error == nil || out.Error.Code != CodeTimeout {
		t.Errorf("timeout error body malformed: %s", body)
	}
}

// TestGracefulShutdown: SIGTERM-style Shutdown during an in-flight sweep
// lets the completed response reach the client before the listener
// closes.
func TestGracefulShutdown(t *testing.T) {
	// The compute-stage fault hook signals when the sweep's first job is
	// on a worker, so Shutdown provably lands mid-sweep.
	started := make(chan struct{})
	var once sync.Once
	s := New(Options{
		Workers: 2,
		Faults: func(stage string, _ uint64) Fault {
			if stage == "compute" {
				once.Do(func() { close(started) })
			}
			return Fault{}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A sweep heavy enough to still be in flight when Shutdown begins.
	jobs := make([]SweepJob, 16)
	for i := range jobs {
		jobs[i] = SweepJob{Simulate: &SimulateRequest{
			Cache:   cache.Spec{Kind: "prime", C: 13},
			Pattern: trace.Pattern{Name: "strided", Stride: int64(i + 1), N: 1 << 17},
			Passes:  4,
		}}
	}
	buf, _ := json.Marshal(SweepRequest{Jobs: jobs})

	type reply struct {
		results []SweepResult
		status  int
		err     error
	}
	done := make(chan reply, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(buf))
		if err != nil {
			done <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			done <- reply{err: err}
			return
		}
		var out struct {
			Results []SweepResult `json:"results"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			done <- reply{err: fmt.Errorf("%v\n%s", err, body)}
			return
		}
		done <- reply{results: out.Results, status: resp.StatusCode}
	}()

	// Wait until the sweep is actually in flight, then shut down.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("sweep never went in flight")
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(shutdownCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight sweep failed across shutdown: %v", r.err)
	}
	if r.status != 200 {
		t.Fatalf("in-flight sweep status = %d", r.status)
	}
	if len(r.results) != len(jobs) {
		t.Fatalf("in-flight sweep returned %d results, want %d", len(r.results), len(jobs))
	}
	for _, res := range r.results {
		if res.Error != "" {
			t.Errorf("job %d failed during drain: %s", res.Index, res.Error)
		}
	}

	// After shutdown the pool refuses new work.
	if _, err := s.pool.Submit(context.Background(), func(context.Context) (any, error) { return nil, nil }); err != ErrPoolClosed {
		t.Errorf("Submit after Shutdown = %v, want ErrPoolClosed", err)
	}
}

func TestPoolBounds(t *testing.T) {
	m := NewMetrics()
	p := NewPool(3, m)
	defer p.Close()
	var wg sync.WaitGroup
	var maxBusy int64
	var mu sync.Mutex
	running := make(chan struct{}, 10)
	block := make(chan struct{})
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(context.Context) (any, error) {
				mu.Lock()
				if b := m.Gauge("pool.busy").Value(); b > maxBusy {
					maxBusy = b
				}
				mu.Unlock()
				running <- struct{}{}
				<-block
				return nil, nil
			})
		}()
	}
	// Three jobs announcing themselves means all three workers hold a
	// blocked job; a fourth cannot start until one finishes.
	for i := 0; i < 3; i++ {
		select {
		case <-running:
		case <-time.After(10 * time.Second):
			t.Fatalf("only %d of 3 workers picked up jobs", i)
		}
	}
	if b := m.Gauge("pool.busy").Value(); b != 3 {
		t.Errorf("busy = %d with 10 blocked jobs on 3 workers", b)
	}
	close(block)
	wg.Wait()
	if maxBusy > 3 {
		t.Errorf("max busy = %d exceeded pool size 3", maxBusy)
	}
	if got := m.Counter("pool.completed").Value(); got != 10 {
		t.Errorf("completed = %d, want 10", got)
	}
}

// TestComputeJobSingleFlight: N concurrent identical jobs compute
// exactly once — each goroutine either leads, joins the in-flight call,
// or hits the memo, so pool.completed is 1 under every interleaving.
func TestComputeJobSingleFlight(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 1})
	job := SweepJob{Model: &ModelRequest{Banks: 16, Tm: 24, B: 512}}
	var wg sync.WaitGroup
	var memoized atomic.Int64
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, m, err := s.computeJob(context.Background(), job, false)
			if err != nil {
				t.Error(err)
				return
			}
			if m {
				memoized.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := s.metrics.Counter("pool.completed").Value(); got != 1 {
		t.Errorf("16 identical concurrent jobs computed %d times, want 1", got)
	}
	if got := memoized.Load(); got != 15 {
		t.Errorf("memoized = %d of 16, want 15 (all but the leader)", got)
	}
}

// TestValidateBoundsBeforeBuild covers the DoS fixes: oversized or
// overflowing jobs must be rejected arithmetically, before any trace is
// materialised. Each call must return promptly — a regression that
// rebuilds the trace first would allocate tens of gigabytes here.
func TestValidateBoundsBeforeBuild(t *testing.T) {
	spec := cache.Spec{Kind: "prime", C: 7}
	for _, tc := range []struct {
		name string
		req  SimulateRequest
	}{
		{"huge strided n", SimulateRequest{Cache: spec,
			Pattern: trace.Pattern{Name: "strided", N: 2_000_000_000}}},
		{"huge subblock b1*b2", SimulateRequest{Cache: spec,
			Pattern: trace.Pattern{Name: "subblock", B1: 1_000_000, B2: 1_000_000}}},
		{"subblock product overflows int", SimulateRequest{Cache: spec,
			Pattern: trace.Pattern{Name: "subblock", B1: math.MaxInt, B2: 2}}},
		{"passes overflows refs*passes", SimulateRequest{Cache: spec,
			Pattern: trace.Pattern{Name: "strided", N: 4096}, Passes: 1 << 60}},
		{"refs*passes over cap without overflow", SimulateRequest{Cache: spec,
			Pattern: trace.Pattern{Name: "strided", N: 1 << 20}, Passes: 1 << 10}},
		{"huge passes with default pattern", SimulateRequest{Cache: spec, Passes: 1 << 60}},
	} {
		if err := tc.req.Validate(DefaultLimits()); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.req)
		} else if ae := asAPIError(err); ae.Code != CodeJobTooLarge {
			t.Errorf("%s: Validate code = %q, want %q", tc.name, ae.Code, CodeJobTooLarge)
		}
	}
	ok := SimulateRequest{Cache: spec, Pattern: trace.Pattern{Name: "strided", N: 4096}, Passes: 2}
	if err := ok.Validate(DefaultLimits()); err != nil {
		t.Errorf("in-bounds request rejected: %v", err)
	}
}

// TestPoolQueuedGaugeOnClose checks the shutdown race does not leak the
// pool.queued gauge: a task that slips into the queue after the workers
// drain is abandoned with ErrPoolClosed and must still be un-counted.
func TestPoolQueuedGaugeOnClose(t *testing.T) {
	m := NewMetrics()
	p := NewPool(1, m)
	p.Close()
	for i := 0; i < 100; i++ {
		if _, err := p.Submit(context.Background(), func(context.Context) (any, error) {
			return nil, nil
		}); err != ErrPoolClosed {
			t.Fatalf("Submit after Close = %v, want ErrPoolClosed", err)
		}
	}
	if q := m.Gauge("pool.queued").Value(); q != 0 {
		t.Errorf("pool.queued = %d after close, want 0", q)
	}
}

func TestMemoLRUEviction(t *testing.T) {
	m := NewMemo(2)
	m.Put("a", 1)
	m.Put("b", 2)
	if _, ok := m.Get("a"); !ok {
		t.Fatal("a missing")
	}
	m.Put("c", 3) // evicts b (least recently used)
	if _, ok := m.Get("b"); ok {
		t.Error("b not evicted")
	}
	if _, ok := m.Get("a"); !ok {
		t.Error("a evicted out of LRU order")
	}
	st := m.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Capacity != 2 {
		t.Errorf("stats = %+v", st)
	}
	// Disabled memo never stores.
	d := NewMemo(0)
	d.Put("x", 1)
	if _, ok := d.Get("x"); ok {
		t.Error("disabled memo returned a value")
	}
}

func TestMetricsHistogram(t *testing.T) {
	var h Histogram
	h.Observe(50 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(20 * time.Second) // overflow bucket
	s := h.Snapshot()
	if s.Count != 3 {
		t.Fatalf("count = %d", s.Count)
	}
	var overflow bool
	var total uint64
	for _, b := range s.Buckets {
		total += b.Count
		if b.UpperUs == -1 {
			overflow = true
		}
	}
	if total != 3 {
		t.Errorf("bucket counts sum to %d, want 3", total)
	}
	if !overflow {
		t.Error("20s observation missing from overflow bucket")
	}
}
