package server_test

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"primecache/internal/server"
)

// TestReadyzDrainingSplit checks the liveness/readiness contract: before
// shutdown both probes answer 200; once Shutdown has run, /v1/healthz
// (liveness) still answers 200 while /v1/readyz reports draining with a
// 503, and compute endpoints refuse with the shutting_down envelope.
func TestReadyzDrainingSplit(t *testing.T) {
	srv := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf [1024]byte
		n, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:n]
	}

	if code, _ := get("/v1/healthz"); code != http.StatusOK {
		t.Fatalf("healthz before drain = %d, want 200", code)
	}
	code, body := get("/v1/readyz")
	if code != http.StatusOK {
		t.Fatalf("readyz before drain = %d, want 200", code)
	}
	var rz server.ReadyzResponse
	if err := json.Unmarshal(body, &rz); err != nil || rz.Draining || rz.Status != "ok" {
		t.Fatalf("readyz body = %s (err %v), want status ok, draining false", body, err)
	}
	if srv.Draining() {
		t.Fatal("Draining() true before shutdown")
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	if !srv.Draining() {
		t.Fatal("Draining() false after shutdown")
	}
	if code, _ := get("/v1/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain = %d, want 200 (liveness must survive drain)", code)
	}
	code, body = get("/v1/readyz")
	if code != http.StatusServiceUnavailable {
		t.Errorf("readyz during drain = %d, want 503", code)
	}
	if err := json.Unmarshal(body, &rz); err != nil || !rz.Draining || rz.Status != "draining" {
		t.Errorf("readyz body = %s (err %v), want status draining, draining true", body, err)
	}
	code, body = get("/v1/stats")
	if code != http.StatusServiceUnavailable {
		t.Errorf("stats during drain = %d, want 503", code)
	}
	var env server.ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != server.CodeShuttingDown {
		t.Errorf("stats drain envelope = %s, want shutting_down", body)
	}
}

// TestBeginDrainBeforeShutdown checks the grace window cmd/vcached uses:
// BeginDrain flips readiness (and compute admission) without touching
// the listener, while in-flight work keeps running, and the later
// Shutdown still drains cleanly.
func TestBeginDrainBeforeShutdown(t *testing.T) {
	srv := server.New(server.Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	srv.BeginDrain()
	srv.BeginDrain() // idempotent

	resp, err := http.Get(ts.URL + "/v1/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rz server.ReadyzResponse
	if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !rz.Draining {
		t.Fatalf("readyz after BeginDrain = %d %+v, want 503 draining", resp.StatusCode, rz)
	}
	if resp, err = http.Get(ts.URL + "/v1/healthz"); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after BeginDrain = %d, want 200", resp.StatusCode)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown after BeginDrain: %v", err)
	}
}
