package server

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"primecache/internal/sim"
)

// Counter is a monotonically increasing metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down (worker-pool occupancy,
// in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc increments the gauge.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec decrements the gauge.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores an absolute value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets are the latency histogram upper bounds in microseconds,
// log-spaced from 100µs to ~10s plus an overflow bucket.
var histBuckets = [numHistBuckets]int64{
	100, 316, 1_000, 3_160, 10_000, 31_600,
	100_000, 316_000, 1_000_000, 3_160_000, 10_000_000,
}

const numHistBuckets = 11

// Histogram accumulates request latencies into fixed log-spaced buckets.
// All methods are safe for concurrent use.
type Histogram struct {
	buckets [numHistBuckets + 1]atomic.Uint64
	count   atomic.Uint64
	sumUs   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	us := d.Microseconds()
	h.count.Add(1)
	h.sumUs.Add(us)
	i := sort.Search(len(histBuckets), func(i int) bool { return us <= histBuckets[i] })
	h.buckets[i].Add(1)
}

// HistogramSnapshot is the JSON form of a Histogram.
type HistogramSnapshot struct {
	// Count is the number of observations; MeanUs their mean in
	// microseconds and SumUs their total.
	Count  uint64  `json:"count"`
	MeanUs float64 `json:"meanUs"`
	SumUs  int64   `json:"sumUs"`
	// Buckets maps each upper bound (µs; the last is an overflow
	// bucket reported as upperUs = -1) to its observation count.
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// HistogramBucket is one histogram bin.
type HistogramBucket struct {
	UpperUs int64  `json:"upperUs"`
	Count   uint64 `json:"count"`
}

// QuantileUs returns an upper bound (in microseconds) on the q-quantile
// of the observed latencies: the upper edge of the first bucket whose
// cumulative count reaches q·total. The log-spaced buckets make this a
// within-3.16× estimate — plenty for pricing hedge delays and retry
// hints. Observations in the overflow bucket report the top edge times
// its spacing factor; an empty histogram reports 0.
func (s HistogramSnapshot) QuantileUs(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	// The q-quantile is the ceil(q·count)-th observation: truncating
	// here used to under-rank (9 fast + 10 slow observations at q=0.5
	// needs the 10th — truncation asked for the 9th and reported the
	// fast bucket even though the median observation is slow).
	need := uint64(math.Ceil(q * float64(s.Count)))
	if need == 0 {
		need = 1
	}
	var cum uint64
	for _, b := range s.Buckets {
		cum += b.Count
		if cum >= need {
			if b.UpperUs < 0 {
				// Overflow bucket: everything above the last finite edge.
				return histBuckets[len(histBuckets)-1] * 316 / 100
			}
			return b.UpperUs
		}
	}
	return histBuckets[len(histBuckets)-1]
}

// Cumulative re-derives the full Prometheus-style bucket ladder from a
// sparse snapshot: every finite upper bound in microseconds (ascending)
// plus a final implicit +Inf entry, each with the cumulative count of
// observations at or below it. Zero buckets the sparse snapshot omitted
// reappear here carrying the running total, so the ladder is always
// complete and non-decreasing — the exposition layer and its property
// tests both lean on that.
func (s HistogramSnapshot) Cumulative() (uppersUs []int64, cum []uint64) {
	uppersUs = make([]int64, len(histBuckets))
	copy(uppersUs, histBuckets[:])
	cum = make([]uint64, len(histBuckets)+1)
	sparse := make(map[int64]uint64, len(s.Buckets))
	for _, b := range s.Buckets {
		sparse[b.UpperUs] = b.Count
	}
	var running uint64
	for i, upper := range uppersUs {
		running += sparse[upper]
		cum[i] = running
	}
	cum[len(histBuckets)] = running + sparse[-1] // overflow joins +Inf
	return uppersUs, cum
}

// Snapshot returns a consistent-enough copy for reporting (buckets are
// read individually; concurrent observations may straddle the read).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumUs: h.sumUs.Load()}
	if s.Count > 0 {
		s.MeanUs = float64(s.SumUs) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		upper := int64(-1)
		if i < len(histBuckets) {
			upper = histBuckets[i]
		}
		s.Buckets = append(s.Buckets, HistogramBucket{UpperUs: upper, Count: n})
	}
	return s
}

// Metrics is the server's hand-rolled metric registry: named counters,
// gauges, and latency histograms, rendered as one JSON object by the
// /v1/stats endpoint. Metric creation is lazy and idempotent; lookups
// after creation are lock-free on the metric itself.
type Metrics struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	clock      sim.Clock
	start      time.Time
}

// NewMetrics returns an empty registry on the real clock.
func NewMetrics() *Metrics { return NewMetricsOn(sim.Real) }

// NewMetricsOn returns an empty registry whose uptime is measured on
// clk (virtual in simulation tests).
func NewMetricsOn(clk sim.Clock) *Metrics {
	clk = sim.Or(clk)
	return &Metrics{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		clock:      clk,
		start:      clk.Now(),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Metrics) Counter(name string) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.counters[name]
	if !ok {
		c = &Counter{}
		m.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (m *Metrics) Gauge(name string) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.gauges[name]
	if !ok {
		g = &Gauge{}
		m.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (m *Metrics) Histogram(name string) *Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.histograms[name]
	if !ok {
		h = &Histogram{}
		m.histograms[name] = h
	}
	return h
}

// MetricsSnapshot is the JSON form of the whole registry.
type MetricsSnapshot struct {
	UptimeSeconds float64                      `json:"uptimeSeconds"`
	Counters      map[string]uint64            `json:"counters"`
	Gauges        map[string]int64             `json:"gauges"`
	Latencies     map[string]HistogramSnapshot `json:"latencies"`
}

// Snapshot renders every registered metric.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		UptimeSeconds: m.clock.Since(m.start).Seconds(),
		Counters:      make(map[string]uint64, len(m.counters)),
		Gauges:        make(map[string]int64, len(m.gauges)),
		Latencies:     make(map[string]HistogramSnapshot, len(m.histograms)),
	}
	for name, c := range m.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range m.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range m.histograms {
		s.Latencies[name] = h.Snapshot()
	}
	return s
}
