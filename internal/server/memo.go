package server

import (
	"container/list"
	"sync"
)

// Memo is a bounded LRU memoization cache from canonical request keys to
// computed results. Sweeps routinely repeat configurations (a grid with a
// fixed axis, retried batches), so identical work is computed once and
// served from here afterwards. Safe for concurrent use.
//
// Get/Put do not deduplicate concurrent computations of the same key
// (both compute, last Put wins) — the Server single-flights identical
// in-flight jobs on top of this (see computeJob), so the memo itself
// stays a plain cache.
type Memo struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits      Counter
	misses    Counter
	evictions Counter
}

type memoEntry struct {
	key   string
	value any
}

// NewMemo returns an LRU memo holding at most capacity entries; a
// non-positive capacity disables memoization (every Get misses, Put is a
// no-op).
func NewMemo(capacity int) *Memo {
	return &Memo{cap: capacity, entries: map[string]*list.Element{}, order: list.New()}
}

// Enabled reports whether the memo stores anything (capacity > 0).
func (m *Memo) Enabled() bool { return m.cap > 0 }

// Get returns the memoized value for key, if any.
func (m *Memo) Get(key string) (any, bool) {
	if m.cap <= 0 {
		m.misses.Inc()
		return nil, false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.entries[key]
	if !ok {
		m.misses.Inc()
		return nil, false
	}
	m.order.MoveToFront(el)
	m.hits.Inc()
	return el.Value.(*memoEntry).value, true
}

// Put stores value under key, evicting the least-recently-used entry when
// full.
func (m *Memo) Put(key string, value any) {
	if m.cap <= 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.entries[key]; ok {
		el.Value.(*memoEntry).value = value
		m.order.MoveToFront(el)
		return
	}
	m.entries[key] = m.order.PushFront(&memoEntry{key: key, value: value})
	for m.order.Len() > m.cap {
		oldest := m.order.Back()
		m.order.Remove(oldest)
		delete(m.entries, oldest.Value.(*memoEntry).key)
		m.evictions.Inc()
	}
}

// Len returns the current entry count.
func (m *Memo) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.order.Len()
}

// MemoStats reports the memo's counters.
type MemoStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
}

// Stats returns a snapshot of the counters.
func (m *Memo) Stats() MemoStats {
	return MemoStats{
		Hits:      m.hits.Value(),
		Misses:    m.misses.Value(),
		Evictions: m.evictions.Value(),
		Entries:   m.Len(),
		Capacity:  m.cap,
	}
}

// HitRatio returns hits/(hits+misses), 0 before any lookup.
func (s MemoStats) HitRatio() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
