package server

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// TestConcurrentSimulateAndSweepConsistency hammers /v1/simulate and
// /v1/sweep from many goroutines with a mix of identical and distinct
// jobs and then checks the accounting invariants that memoization and
// single-flighting promise: same-key responses are identical payloads,
// the memo holds exactly the distinct keys with zero evictions, the
// hit/miss counters cover every admission, the pool gauges return to
// idle, and no in-flight call leaks. Run under -race (make race / make
// ci) this doubles as the data-race stress for the whole service path.
func TestConcurrentSimulateAndSweepConsistency(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, MemoEntries: 1 << 14})

	// Distinct jobs: small, fast geometries; every goroutine draws from
	// the same fixed set so identical jobs collide across goroutines on
	// purpose.
	reqs := []SimulateRequest{
		{Cache: cache.Spec{Kind: "prime", C: 5}, Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 128}},
		{Cache: cache.Spec{Kind: "direct", Lines: 64}, Pattern: trace.Pattern{Name: "strided", Stride: 32, N: 128}},
		{Cache: cache.Spec{Kind: "assoc", Lines: 64, Ways: 4}, Pattern: trace.Pattern{Name: "rowcol", LD: 33, N: 32}},
		{Cache: cache.Spec{Kind: "victim", Lines: 64, VictimLines: 4}, Pattern: trace.Pattern{Name: "diagonal", LD: 65, N: 48}},
		{Cache: cache.Spec{Kind: "skewed", Lines: 64}, Pattern: trace.Pattern{Name: "subblock", LD: 40, B1: 6, B2: 6}},
	}
	keys := make([]string, len(reqs))
	for i, r := range reqs {
		job := SweepJob{Simulate: &r}
		keys[i] = job.Key()
	}

	const goroutines = 16
	const iters = 10

	// canonical maps request index → the JSON payload (minus the
	// volatile "memoized" flag) every response for that request must
	// match.
	var mu sync.Mutex
	canonical := make(map[int]string)

	strip := func(t *testing.T, raw []byte) string {
		t.Helper()
		var m map[string]any
		if err := json.Unmarshal(raw, &m); err != nil {
			t.Errorf("bad response JSON: %v", err)
			return ""
		}
		delete(m, "memoized")
		out, err := json.Marshal(m)
		if err != nil {
			t.Errorf("re-marshal: %v", err)
			return ""
		}
		return string(out)
	}
	record := func(t *testing.T, idx int, payload string) {
		t.Helper()
		if payload == "" {
			return
		}
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := canonical[idx]; !ok {
			canonical[idx] = payload
		} else if prev != payload {
			t.Errorf("request %d: divergent responses for one memo key:\n  %s\n  %s", idx, prev, payload)
		}
	}

	var wg sync.WaitGroup
	for gid := 0; gid < goroutines; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				switch (gid + it) % 3 {
				case 0: // identical job storm: everyone posts request 0
					resp, body := postJSON(t, ts.URL+"/v1/simulate", reqs[0])
					if resp.StatusCode != 200 {
						t.Errorf("simulate status %d: %s", resp.StatusCode, body)
						continue
					}
					record(t, 0, strip(t, body))
				case 1: // distinct job per goroutine
					idx := gid % len(reqs)
					resp, body := postJSON(t, ts.URL+"/v1/simulate", reqs[idx])
					if resp.StatusCode != 200 {
						t.Errorf("simulate status %d: %s", resp.StatusCode, body)
						continue
					}
					record(t, idx, strip(t, body))
				default: // sweep repeating every key twice in one batch
					var sr SweepRequest
					for i := range reqs {
						r := reqs[i]
						sr.Jobs = append(sr.Jobs, SweepJob{Simulate: &r}, SweepJob{Simulate: &r})
					}
					resp, body := postJSON(t, ts.URL+"/v1/sweep", sr)
					if resp.StatusCode != 200 {
						t.Errorf("sweep status %d: %s", resp.StatusCode, body)
						continue
					}
					var out struct {
						Results []SweepResult `json:"results"`
					}
					if err := json.Unmarshal(body, &out); err != nil {
						t.Errorf("sweep decode: %v", err)
						continue
					}
					if len(out.Results) != len(sr.Jobs) {
						t.Errorf("sweep returned %d results for %d jobs", len(out.Results), len(sr.Jobs))
						continue
					}
					for _, res := range out.Results {
						if res.Error != "" {
							t.Errorf("sweep job %d failed: %s", res.Index, res.Error)
							continue
						}
						raw, err := json.Marshal(res.Simulate)
						if err != nil {
							t.Errorf("re-marshal result: %v", err)
							continue
						}
						// Canonicalise through the same map round-trip as
						// the simulate path so field order cannot differ.
						record(t, res.Index/2, strip(t, raw))
					}
				}
			}
		}(gid)
	}
	wg.Wait()

	// Every request index must have produced at least one payload, and
	// the sweep-vs-simulate payloads for one key must agree (sweep
	// results are SimulateResponse, simulate adds only "memoized").
	mu.Lock()
	if len(canonical) != len(reqs) {
		t.Errorf("saw %d distinct payload keys, want %d", len(canonical), len(reqs))
	}
	mu.Unlock()

	// Accounting invariants, via the same endpoint operators would use.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsResponse
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats endpoint: %v: %s", err, body)
	}
	if stats.Memo.Entries != len(reqs) {
		t.Errorf("memo holds %d entries, want %d distinct keys", stats.Memo.Entries, len(reqs))
	}
	if stats.Memo.Evictions != 0 {
		t.Errorf("memo evicted %d entries under a %d-entry cap", stats.Memo.Evictions, 1<<14)
	}
	if stats.Memo.Hits+stats.Memo.Misses == 0 {
		t.Error("memo counters never moved")
	}
	if stats.Pool.Busy != 0 || stats.Pool.Queued != 0 {
		t.Errorf("pool gauges not idle after quiescence: busy=%d queued=%d", stats.Pool.Busy, stats.Pool.Queued)
	}

	// Single-flight table must be empty once all requests finished.
	s.callMu.Lock()
	leaked := len(s.calls)
	s.callMu.Unlock()
	if leaked != 0 {
		t.Errorf("%d in-flight calls leaked in the single-flight table", leaked)
	}

	// Computation happened exactly once per distinct key: with
	// memoization and single-flighting, misses == distinct keys is the
	// strongest possible claim, but a joiner that loses the memo re-read
	// race still counts a miss on its next Get, so assert the weaker,
	// always-true direction plus an upper bound via direct memo stats.
	ms := s.memo.Stats()
	if ms.Misses < uint64(len(reqs)) {
		t.Errorf("memo misses = %d, want >= %d (one per distinct key)", ms.Misses, len(reqs))
	}
	if ms.Entries != len(reqs) {
		t.Errorf("memo entries = %d, want %d", ms.Entries, len(reqs))
	}
}
