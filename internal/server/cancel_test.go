package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// flipCtx is a Context whose Err flips to Canceled after `after` calls.
// The evaluation paths consult only ctx.Err() — never Done() — so the
// flip count pins exactly which checkpoint observes the cancellation,
// making the stop-distance assertions below deterministic.
type flipCtx struct {
	context.Context
	calls atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

// TestVectorCancellationStopsWithinChunk: a ten-megareference strided
// job on the vector path (assoc organisation: no closed form) is
// cancelled at the third checkpoint and must stop having burned exactly
// two chunks — not the full job.
func TestVectorCancellationStopsWithinChunk(t *testing.T) {
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 1 << 14, Ways: 4},
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 1 << 20, Stream: 1},
		Passes:  10, // ~10.5M references if allowed to finish
	}.Normalize()
	ctx := &flipCtx{Context: context.Background(), after: 2}
	_, err := runSimulate(ctx, req, evalOpts{})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("partial error does not unwrap to Canceled: %v", err)
	}
	if pe.Refs != 2*evalChunk {
		t.Errorf("stopped after %d refs, want exactly %d (two chunks before the flip)", pe.Refs, 2*evalChunk)
	}
}

// TestReplayCancellationStopsWithinChunk: same contract on the batch
// replay path (subblock pattern, so neither analytic nor vector).
func TestReplayCancellationStopsWithinChunk(t *testing.T) {
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 1 << 14, Ways: 4},
		Pattern: trace.Pattern{Name: "subblock", LD: 2048, B1: 1024, B2: 1024, Stream: 1},
		Passes:  10, // ~10.5M references if allowed to finish
	}.Normalize()
	ctx := &flipCtx{Context: context.Background(), after: 1}
	_, err := runSimulate(ctx, req, evalOpts{})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("partial error does not unwrap to Canceled: %v", err)
	}
	// The replay checks its budget every evalChunk references; one check
	// passes, the second cancels, so at most two chunks completed.
	if pe.Refs < evalChunk || pe.Refs > 2*evalChunk {
		t.Errorf("stopped after %d refs, want within (%d, %d]", pe.Refs, evalChunk, 2*evalChunk)
	}
}

// TestTimeoutSurfacesPartialWork: over HTTP, a job killed by the request
// timeout produces the typed 504 envelope and its burned references show
// up in the /v1/stats partial-work counters.
func TestTimeoutSurfacesPartialWork(t *testing.T) {
	_, ts := newTestServer(t, Options{RequestTimeout: 20 * time.Millisecond})
	req := SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 1 << 17, Ways: 4},
		Pattern: trace.Pattern{Name: "strided", Stride: 3, N: 1 << 20},
		Passes:  50,
	}
	resp, body := postJSON(t, ts.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error == nil || env.Error.Code != CodeTimeout {
		t.Fatalf("timeout envelope malformed: %s", body)
	}

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var stats StatsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Partial.CancelledJobs < 1 {
		t.Errorf("partial.cancelledJobs = %d, want >= 1", stats.Partial.CancelledJobs)
	}
	if stats.Partial.RefsCompleted == 0 {
		t.Error("partial.refsCompleted = 0: timed-out job's burned work not accounted")
	}
}
