package server

import "primecache/internal/persist"

// Schema 2 of /v1/stats: the memo, persist, admission, and partial
// blocks below are shaped identically on the single-node server and
// the cluster coordinator, so one dashboard (or one typed client
// decode) works against either tier. The response carries
// "schema": 2; the schema-1 top-level shapes are kept for one release
// and announced via Deprecation/Sunset headers on the endpoint.

// StatsSchemaVersion is the current /v1/stats schema.
const StatsSchemaVersion = 2

// Deprecation metadata for the schema-1 field layout, served as HTTP
// response headers on /v1/stats (RFC 8594 Sunset; draft Deprecation).
const (
	StatsSchema1Deprecation = "Sat, 08 Aug 2026 00:00:00 GMT"
	StatsSchema1Sunset      = "Sat, 07 Nov 2026 00:00:00 GMT"
)

// MemoBlock is the memo tier's stats block (wire-compatible with the
// schema-1 "memo" object).
type MemoBlock struct {
	Hits      uint64  `json:"hits"`
	Misses    uint64  `json:"misses"`
	Evictions uint64  `json:"evictions"`
	Entries   int     `json:"entries"`
	Capacity  int     `json:"capacity"`
	HitRatio  float64 `json:"hitRatio"`
}

// PersistBlock is the disk tier's stats block; Enabled false means the
// server runs memory-only and every counter is zero.
type PersistBlock struct {
	Enabled bool `json:"enabled"`
	persist.Stats
}

// AdmissionBlock is the overload valve's stats block (wire-compatible
// with the schema-1 "admission" object).
type AdmissionBlock struct {
	Capacity int     `json:"capacity"`
	Queued   int64   `json:"queued"`
	Shed     uint64  `json:"shed"`
	Degraded uint64  `json:"degraded"`
	Pressure float64 `json:"pressure"`
}

// PartialBlock accounts work burned by jobs cancelled mid-simulation
// (wire-compatible with the schema-1 "partial" object).
type PartialBlock struct {
	CancelledJobs uint64 `json:"cancelledJobs"`
	RefsCompleted uint64 `json:"refsCompleted"`
}

// StatsV2 is the uniform cross-tier view of a stats response — the
// schema-2 contract without the tier-specific extras (pool, metrics,
// cluster routing). Client dashboards should consume this.
type StatsV2 struct {
	Schema    int            `json:"schema"`
	Memo      MemoBlock      `json:"memo"`
	Persist   PersistBlock   `json:"persist"`
	Admission AdmissionBlock `json:"admission"`
	Partial   PartialBlock   `json:"partial"`
}

// V2 projects the full server response onto the uniform schema-2 view.
func (r StatsResponse) V2() StatsV2 {
	return StatsV2{
		Schema:    r.Schema,
		Memo:      r.Memo,
		Persist:   r.Persist,
		Admission: r.Admission,
		Partial:   r.Partial,
	}
}

// memoBlock assembles the block from the memo's counters.
func memoBlock(st MemoStats) MemoBlock {
	return MemoBlock{
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
		Entries:   st.Entries,
		Capacity:  st.Capacity,
		HitRatio:  st.HitRatio(),
	}
}

// persistBlock assembles the block, zero-valued when the tier is off.
func persistBlock(st *persist.Store) PersistBlock {
	if st == nil {
		return PersistBlock{}
	}
	return PersistBlock{Enabled: true, Stats: st.Stats()}
}

// SetDeprecationHeaders announces the schema-1 sunset on a /v1/stats
// response. The coordinator calls it too — both tiers deprecate the
// schema-1 layout on the same clock.
func SetDeprecationHeaders(set func(key, value string)) {
	set("Deprecation", StatsSchema1Deprecation)
	set("Sunset", StatsSchema1Sunset)
}
