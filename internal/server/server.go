package server

import (
	"context"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"primecache/internal/obs"
	"primecache/internal/persist"
	"primecache/internal/sim"
)

// Options configures a Server. The zero value is usable: GOMAXPROCS
// workers, a 4096-entry memoizer, a 30-second per-request compute
// timeout, default Limits, a 256-slot admission backlog, and analytic
// degradation at 75% admission pressure.
type Options struct {
	// Workers sizes the compute pool; <= 0 selects GOMAXPROCS.
	Workers int
	// MemoEntries caps the memoization LRU; < 0 disables memoization,
	// 0 selects the default (4096).
	MemoEntries int
	// RequestTimeout bounds the compute time of one simulate/model job
	// and of every job in a sweep; 0 selects 30s, < 0 disables.
	RequestTimeout time.Duration
	// Limits bounds what one request may ask for (references per job,
	// sweep batch size, body bytes); zero fields select defaults.
	Limits Limits
	// QueueDepth is the admission backlog beyond the worker count: at
	// most Workers+QueueDepth compute requests are in the building at
	// once, the rest are shed with 429. 0 selects 256; < 0 selects no
	// backlog (capacity = worker count).
	QueueDepth int
	// EndpointConcurrency caps concurrently admitted requests per
	// compute endpoint (simulate, model, sweep); <= 0 means only the
	// global queue applies.
	EndpointConcurrency int
	// DegradeThreshold is the admission-pressure fraction (queued /
	// capacity) at or above which qualifying strided/diagonal jobs are
	// answered by the closed form even below the normal size cutoff,
	// flagged degraded. 0 selects 0.75; < 0 disables degradation.
	DegradeThreshold float64
	// Faults injects deterministic latency/error/queue-full faults into
	// the admit and compute stages. Tests only; nil in production.
	Faults FaultFunc
	// Clock is the time source behind latency histograms, uptime, and
	// fault sleeps; nil selects the real clock. Simulation tests inject
	// a sim.Virtual clock and advance it explicitly.
	Clock sim.Clock
	// Persist, when non-nil, is the disk-backed second-level memo tier:
	// memo misses fall through to it (promoting hits back into the LRU),
	// computed results are stored through, and a graceful Shutdown syncs
	// and snapshots it so the next process starts warm. The server owns
	// the store's lifecycle from here on: Shutdown closes it cleanly,
	// Close kills it (crash semantics).
	Persist *persist.Store
	// Tracer, when non-nil, records a span tree per compute request:
	// an edge span at the handler (stitched to the caller's trace when
	// the X-Vcache-Trace header is present) with children around
	// admission, memo lookup, queue wait, and evaluation. Finished
	// traces are served at /v1/debug/traces. Nil disables tracing; the
	// instrumented paths become no-ops.
	Tracer *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.MemoEntries == 0 {
		o.MemoEntries = 4096
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	o.Limits = o.Limits.withDefaults()
	switch {
	case o.QueueDepth == 0:
		o.QueueDepth = 256
	case o.QueueDepth < 0:
		o.QueueDepth = 0
	}
	if o.DegradeThreshold == 0 {
		o.DegradeThreshold = 0.75
	}
	return o
}

// Server is the vcached service: handlers over a shared worker pool,
// memoizer, and metrics registry. Create with New, expose via Handler,
// and stop with Shutdown (drains in-flight requests) or Close.
type Server struct {
	opts    Options
	clock   sim.Clock
	tracer  *obs.Tracer
	metrics *Metrics
	memo    *Memo
	persist *persist.Store
	pool    *Pool
	admit   *admission
	mux     *http.ServeMux
	httpSrv *http.Server

	// Fault-injection sequence numbers, one per stage, so a FaultFunc
	// sees a deterministic 1-based ordinal regardless of concurrency.
	admitSeq   atomic.Uint64
	computeSeq atomic.Uint64

	// Single-flight bookkeeping: concurrent identical jobs (the common
	// case inside one sweep) share one in-flight computation instead of
	// all missing the memo and computing redundantly.
	callMu sync.Mutex
	calls  map[string]*inflightCall

	// Graceful-shutdown bookkeeping: handlers register with inflightWG
	// under the read lock; Shutdown flips closing under the write lock
	// and then waits, so the pool only closes after every in-flight
	// request has written its response. This works no matter which
	// http.Server fronts the handler (cmd/vcached, httptest, embedding).
	drainMu  sync.RWMutex
	closing  bool
	inflight sync.WaitGroup
}

// New builds a Server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	clk := sim.Or(opts.Clock)
	m := NewMetricsOn(clk)
	s := &Server{
		opts:    opts,
		clock:   clk,
		tracer:  opts.Tracer,
		metrics: m,
		memo:    NewMemo(opts.MemoEntries),
		persist: opts.Persist,
		pool:    NewPoolOn(opts.Workers, m, clk),
		mux:     http.NewServeMux(),
		calls:   map[string]*inflightCall{},
	}
	capacity := s.pool.Size() + opts.QueueDepth
	perEndpoint := opts.EndpointConcurrency
	if perEndpoint <= 0 {
		perEndpoint = capacity
	}
	s.admit = newAdmission(capacity, perEndpoint, []string{"simulate", "model", "sweep"}, m)
	s.mux.Handle("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.Handle("POST /v1/model", s.instrument("model", s.handleModel))
	s.mux.Handle("POST /v1/sweep", s.instrument("sweep", s.handleSweep))
	// Liveness and readiness stay answerable while the server drains:
	// external load balancers and the cluster health checker poll them to
	// decide when to stop routing, which only works if a draining server
	// still says so instead of refusing the probe.
	s.mux.Handle("GET /v1/healthz", s.instrumentLive("healthz", s.handleHealthz))
	s.mux.Handle("GET /v1/readyz", s.instrumentLive("readyz", s.handleReadyz))
	s.mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	// Scrapes and trace pulls are observability plumbing, not compute:
	// like the probes they stay answerable during a drain, and they are
	// not themselves traced (a scraper polling every few seconds would
	// churn the ring with single-span traces).
	s.mux.Handle("GET /metrics", s.instrumentLive("metrics", s.handleMetrics))
	s.mux.Handle("GET /v1/debug/traces", s.instrumentLive("traces", s.handleTraces))
	// Warm-state migration only exists where there is durable state to
	// move: memory-only servers answer 404 on these paths, and their
	// metric families never mention the migration counters.
	if s.persist != nil {
		s.mux.Handle("GET /v1/persist/export", s.instrument("persistExport", s.handlePersistExport))
		s.mux.Handle("POST /v1/persist/import", s.instrument("persistImport", s.handlePersistImport))
	}
	s.httpSrv = &http.Server{Handler: s.mux}
	return s
}

// Handler returns the service's HTTP handler (for httptest and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// Metrics returns the registry (for tests and embedding).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Tracer returns the server's tracer, nil when tracing is disabled.
// Cluster tests use it to read a backend's finished-trace ring directly
// instead of over HTTP.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// Persist returns the disk tier, nil when the server runs memory-only.
func (s *Server) Persist() *persist.Store { return s.persist }

// WarmKeys reports how many job keys this server can answer without
// pool work: the larger of the memo's resident entries and the persist
// tier's live keys (the disk tier survives restarts, so after a reboot
// it is what makes the server warm). Surfaced in /v1/readyz for the
// coordinator's warm-replica failover preference.
func (s *Server) WarmKeys() int {
	warm := s.memo.Len()
	if s.persist != nil {
		if k := s.persist.Keys(); k > warm {
			warm = k
		}
	}
	return warm
}

// Serve accepts connections on l until Shutdown or Close. It always
// returns a non-nil error; after Shutdown it returns http.ErrServerClosed.
func (s *Server) Serve(l net.Listener) error {
	return s.httpSrv.Serve(l)
}

// ListenAndServe listens on addr and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(l)
}

// BeginDrain flips the server to draining without touching the
// listener: /v1/readyz starts answering 503 {"draining":true}, new
// compute requests get the shutting_down envelope, and /v1/healthz
// keeps reporting ok. Call it a readiness-probe interval or so before
// Shutdown so load balancers and cluster coordinators observe the
// transition while the listener still accepts connections (Shutdown
// closes it immediately). Idempotent; Shutdown implies it.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	s.closing = true
	s.drainMu.Unlock()
}

// Shutdown stops listening, waits (up to ctx) for in-flight requests to
// complete, then stops the worker pool. In-flight sweeps drain: their
// responses are written before the listener closes and before workers
// exit. New requests arriving during the drain get a structured 503.
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()

	err := s.httpSrv.Shutdown(ctx)

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if err == nil {
			err = ctx.Err()
		}
	}
	s.pool.Close()
	// With every request drained, the disk tier's log is final: fsync
	// and write the index snapshot so the next open restores warm
	// without a scan.
	if s.persist != nil {
		if perr := s.persist.Close(); perr != nil && err == nil {
			err = perr
		}
	}
	return err
}

// Close stops the server without draining. The persist tier is killed,
// not closed: no fsync, no snapshot — the same disk state a crash
// leaves behind, so recovery always goes through the scan path.
func (s *Server) Close() error {
	err := s.httpSrv.Close()
	s.pool.Close()
	if s.persist != nil {
		s.persist.Kill()
	}
	return err
}

// admitRequest runs the fault hook and the admission valve for one
// compute request. On success the returned release must be called once
// the response is written; on overload it returns the 429 envelope.
func (s *Server) admitRequest(ctx context.Context, endpoint string) (func(), error) {
	_, span := obs.Start(ctx, "admit")
	defer span.End()
	if s.opts.Faults != nil {
		f := s.opts.Faults("admit", s.admitSeq.Add(1))
		if f.Latency > 0 {
			s.clock.Sleep(f.Latency)
		}
		if f.Err != nil {
			return nil, f.Err
		}
		if f.QueueFull {
			s.admit.shed.Inc()
			span.SetAttr("shed", "true")
			return nil, s.overloadedError()
		}
	}
	release, ok := s.admit.tryAdmit(endpoint)
	if !ok {
		span.SetAttr("shed", "true")
		return nil, s.overloadedError()
	}
	return release, nil
}

// overloadedError builds the shed envelope: code overloaded plus a
// Retry-After hint priced from the queue depth and the pool's mean
// observed compute latency.
func (s *Server) overloadedError() *APIError {
	depth := s.admit.depth()
	mean := s.metrics.Histogram("latency.pool").Snapshot().MeanUs
	ae := Errf(CodeOverloaded, "admission queue full (%d of %d slots in use)", depth, s.admit.capacity())
	ae.RetryAfterMs = retryAfterHint(depth, s.pool.Size(), mean)
	return ae
}

// degradeNow reports whether admission pressure has crossed the
// degradation threshold, in which case qualifying jobs admitted now are
// answered analytically below the normal cutoff.
func (s *Server) degradeNow() bool {
	t := s.opts.DegradeThreshold
	return t > 0 && s.admit.pressure() >= t
}

// Draining reports whether Shutdown has begun: the server still answers
// probes (and drains in-flight work) but admits no new compute.
func (s *Server) Draining() bool {
	s.drainMu.RLock()
	defer s.drainMu.RUnlock()
	return s.closing
}

// requestCtx applies the per-request compute timeout.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.opts.RequestTimeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.opts.RequestTimeout)
}

// instrument wraps a handler with request/error counters, an in-flight
// gauge, and a latency histogram, all surfaced by /v1/stats. Once
// shutdown begins the wrapped handler refuses with a structured 503.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return s.wrap(name, h, false)
}

// instrumentLive is instrument for probe endpoints: the handler keeps
// answering during the drain (it never joins the in-flight WaitGroup, so
// a probe arriving after Shutdown started cannot race the drain wait).
func (s *Server) instrumentLive(name string, h http.HandlerFunc) http.Handler {
	return s.wrap(name, h, true)
}

func (s *Server) wrap(name string, h http.HandlerFunc, live bool) http.Handler {
	requests := s.metrics.Counter("requests." + name)
	errors := s.metrics.Counter("errors." + name)
	latency := s.metrics.Histogram("latency." + name)
	inflight := s.metrics.Gauge("inflight")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !live {
			s.drainMu.RLock()
			if s.closing {
				s.drainMu.RUnlock()
				errors.Inc()
				writeError(w, ErrPoolClosed)
				return
			}
			s.inflight.Add(1)
			s.drainMu.RUnlock()
			defer s.inflight.Done()
		}

		// Edge span: the local root of this request's trace. A propagated
		// header stitches it under the caller's span; otherwise a fresh
		// trace starts here. Probe/scrape handlers (live) are not traced.
		var span *obs.Span
		if s.tracer != nil && !live {
			ctx := r.Context()
			if tid, sid, ok := obs.ParseHeader(r.Header.Get(obs.Header)); ok {
				ctx, span = s.tracer.StartRemoteSpan(ctx, name, tid, sid)
			} else {
				ctx, span = s.tracer.StartSpan(ctx, name)
			}
			r = r.WithContext(ctx)
		}

		requests.Inc()
		inflight.Inc()
		start := s.clock.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if span != nil {
			status := sw.status
			if status == 0 {
				status = http.StatusOK
			}
			span.SetAttr("status", strconv.Itoa(status))
			// End (and so publish) before the gauges tick down: when the
			// chaos harness observes a quiesced server, every admitted
			// request's trace is already in the ring.
			span.End()
		}
		latency.Observe(s.clock.Since(start))
		inflight.Dec()
		if sw.status >= 400 {
			errors.Inc()
		}
	})
}

// statusWriter records the status code for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards flushes so sweep streaming works through the wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
