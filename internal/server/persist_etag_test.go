package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/persist"
	"primecache/internal/trace"
)

// warmJob is the canonical request the warm-restart tests replay: a
// real simulation, heavy enough that recomputation would be visible in
// the pool counters.
func warmJob() SimulateRequest {
	return SimulateRequest{
		Cache:   cache.Spec{Kind: "assoc", Lines: 4096, Ways: 4},
		Pattern: trace.Pattern{Name: "strided", Stride: 17, N: 8192, Stream: 1},
		Passes:  2,
	}
}

// TestConditionalSimulate pins the conditional-GET contract on
// /v1/simulate: a strong quoted ETag on every 200, a bodiless 304 with
// the memoized-verdict header on a matching If-None-Match, and a full
// 200 on a stale validator.
func TestConditionalSimulate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body, _ := json.Marshal(warmJob())

	post := func(inm string) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if inm != "" {
			req.Header.Set("If-None-Match", inm)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}

	resp, out := post("")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first request status %d: %s", resp.StatusCode, out)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("200 response carries no ETag")
	}
	if !strings.HasPrefix(etag, `"`) || !strings.HasSuffix(etag, `"`) {
		t.Fatalf("ETag %q is not a quoted strong validator", etag)
	}

	resp, out = post(etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("matching If-None-Match status %d, want 304", resp.StatusCode)
	}
	if len(out) != 0 {
		t.Errorf("304 carried a %d-byte body", len(out))
	}
	if got := resp.Header.Get(MemoizedHeader); got != "true" {
		t.Errorf("%s = %q, want true (the repeat is a memo hit)", MemoizedHeader, got)
	}
	if resp.Header.Get("ETag") != etag {
		t.Errorf("304 ETag %q differs from original %q", resp.Header.Get("ETag"), etag)
	}

	// A stale validator gets the full body again; a wildcard matches.
	resp, out = post(`"0000000000000000000000000000dead"`)
	if resp.StatusCode != http.StatusOK || len(out) == 0 {
		t.Fatalf("stale validator: status %d body %d bytes, want full 200", resp.StatusCode, len(out))
	}
	resp, _ = post("*")
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("wildcard If-None-Match status %d, want 304", resp.StatusCode)
	}
	// Weak validators never strong-match.
	resp, _ = post("W/" + etag)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("weak validator status %d, want 200", resp.StatusCode)
	}
}

// TestConditionalModel pins the same contract on /v1/model, and that
// the memoized flag stays out of the hash: the first (unmemoized) and
// second (memoized) responses carry the same validator.
func TestConditionalModel(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	req := ModelRequest{Banks: 64, Tm: 64, B: 4096}

	resp, _ := postJSON(t, ts.URL+"/v1/model", req)
	first := resp.Header.Get("ETag")
	if first == "" {
		t.Fatal("model response carries no ETag")
	}
	resp, _ = postJSON(t, ts.URL+"/v1/model", req)
	if second := resp.Header.Get("ETag"); second != first {
		t.Errorf("memoized repeat changed the ETag: %q then %q", first, second)
	}
}

// TestWarmRestartFromPersist is the tentpole's end-to-end proof: a job
// computed before a graceful shutdown is answered memoized by a fresh
// server over the same persist dir, with zero pool work.
func TestWarmRestartFromPersist(t *testing.T) {
	dir := t.TempDir()
	req := warmJob()

	store, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Options{Persist: store})
	resp, body := postJSON(t, ts1.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold simulate status %d: %s", resp.StatusCode, body)
	}
	var cold struct {
		SimulateResponse
		Memoized bool `json:"memoized"`
	}
	if err := json.Unmarshal(body, &cold); err != nil {
		t.Fatal(err)
	}
	if cold.Memoized {
		t.Fatal("first-ever request reported memoized")
	}
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// A brand-new process: fresh store handle, fresh server, cold memo.
	store2, err := persist.Open(persist.Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopening persist dir: %v", err)
	}
	if got := store2.Stats(); got.Keys == 0 || !got.SnapshotRestore {
		t.Fatalf("reopened store stats %+v, want warm keys via snapshot", got)
	}
	s2, ts2 := newTestServer(t, Options{Persist: store2})
	resp, body = postJSON(t, ts2.URL+"/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm simulate status %d: %s", resp.StatusCode, body)
	}
	var warm struct {
		SimulateResponse
		Memoized bool `json:"memoized"`
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if !warm.Memoized {
		t.Fatal("restarted server did not answer the prior job from the persist tier")
	}
	if warm.Stats != cold.Stats {
		t.Errorf("warm answer differs from cold: %+v vs %+v", warm.Stats, cold.Stats)
	}
	if n := s2.Metrics().Counter("pool.completed").Value(); n != 0 {
		t.Errorf("warm hit burned %d pool jobs, want 0", n)
	}
	if st := store2.Stats(); st.Hits != 1 {
		t.Errorf("persist hits = %d, want 1", st.Hits)
	}
	// Promoted to the memo: the next repeat is a memory hit, not disk.
	if resp, body := postJSON(t, ts2.URL+"/v1/simulate", req); resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	if st := store2.Stats(); st.Hits != 1 {
		t.Errorf("memo promotion failed: persist hits = %d after repeat, want still 1", st.Hits)
	}
}

// TestStatsSchema2 pins the versioned stats surface: "schema": 2, the
// uniform blocks, the persist block tracking the disk tier, and the
// schema-1 deprecation announcement headers.
func TestStatsSchema2(t *testing.T) {
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Persist: store})
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/simulate", warmJob()); resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.Header.Get("Deprecation") != StatsSchema1Deprecation {
		t.Errorf("Deprecation header = %q, want %q", resp.Header.Get("Deprecation"), StatsSchema1Deprecation)
	}
	if resp.Header.Get("Sunset") != StatsSchema1Sunset {
		t.Errorf("Sunset header = %q, want %q", resp.Header.Get("Sunset"), StatsSchema1Sunset)
	}
	var stats StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Schema != StatsSchemaVersion {
		t.Errorf("schema = %d, want %d", stats.Schema, StatsSchemaVersion)
	}
	if stats.Memo.Hits != 1 || stats.Memo.Misses != 1 {
		t.Errorf("memo block = %+v, want 1 hit / 1 miss", stats.Memo)
	}
	if stats.Memo.HitRatio != 0.5 {
		t.Errorf("memo hitRatio = %v, want 0.5", stats.Memo.HitRatio)
	}
	if !stats.Persist.Enabled {
		t.Error("persist block disabled with a store attached")
	}
	if stats.Persist.Keys != 1 {
		t.Errorf("persist keys = %d, want 1", stats.Persist.Keys)
	}
	// The projection the typed client serves agrees with the raw body.
	v2 := stats.V2()
	if v2.Schema != StatsSchemaVersion || v2.Persist.Keys != 1 || v2.Memo.Hits != 1 {
		t.Errorf("V2 projection = %+v, disagrees with response", v2)
	}
}

// TestReadyzWarmKeys checks readiness advertises the warm working set:
// zero on a cold empty server, positive once the tiers hold results.
func TestReadyzWarmKeys(t *testing.T) {
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Persist: store})

	get := func() ReadyzResponse {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var rz ReadyzResponse
		if err := json.NewDecoder(resp.Body).Decode(&rz); err != nil {
			t.Fatal(err)
		}
		return rz
	}
	if rz := get(); rz.WarmKeys != 0 {
		t.Errorf("cold server advertises %d warm keys", rz.WarmKeys)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/simulate", warmJob()); resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
	}
	if rz := get(); rz.WarmKeys != 1 {
		t.Errorf("warmed server advertises %d warm keys, want 1", rz.WarmKeys)
	}
}

// TestMetricsExposePersistFamilies checks the vcached_persist_*
// families appear on /metrics exactly when the disk tier is enabled.
func TestMetricsExposePersistFamilies(t *testing.T) {
	store, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Persist: store})
	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/v1/simulate", warmJob()); resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate status %d: %s", resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, fam := range []string{
		"vcached_persist_hits_total",
		"vcached_persist_misses_total",
		"vcached_persist_bytes_total",
		"vcached_persist_segments_total",
		"vcached_persist_compactions_total",
		"vcached_persist_corrupt_records_total",
		"vcached_persist_keys",
		"vcached_persist_disk_bytes",
	} {
		if !strings.Contains(text, fam) {
			t.Errorf("/metrics missing %s", fam)
		}
	}

	// And a memory-only server exposes none of them (pinning the
	// metrics.golden protection).
	_, ts2 := newTestServer(t, Options{})
	resp2, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	data2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(data2), "vcached_persist_") {
		t.Error("memory-only server exposes persist families")
	}
}
