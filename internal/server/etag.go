package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// Conditional requests for the compute endpoints: every /v1/simulate
// and /v1/model response carries a strong ETag derived from the
// canonical job key and the result's canonical JSON. Results are
// deterministic functions of the job, so the same job yields the same
// ETag on every node and every restart — which makes If-None-Match
// work across failovers, not just against one process. The memoized
// flag is deliberately excluded from the hash: it describes this
// request's cache luck, not the entity.

// resultETag computes the quoted strong validator for a computed
// payload under its canonical job key.
func resultETag(key string, payload any) (string, bool) {
	body, err := json.Marshal(payload)
	if err != nil {
		return "", false
	}
	h := sha256.New()
	h.Write([]byte(key))
	h.Write([]byte{0})
	h.Write(body)
	sum := h.Sum(nil)
	return `"` + hex.EncodeToString(sum[:16]) + `"`, true
}

// ETagMatch implements the If-None-Match strong comparison: a bare *
// matches any current entity; weak validators (W/"...") never
// strong-match. Exported because the cluster coordinator answers
// conditional requests at the edge with backend-computed validators.
func ETagMatch(headerValue, etag string) bool {
	for _, candidate := range strings.Split(headerValue, ",") {
		candidate = strings.TrimSpace(candidate)
		if candidate == "*" || candidate == etag {
			return true
		}
	}
	return false
}

// writeConditional sets the ETag header and either answers 304 (no
// body) when the client's If-None-Match matches, or writes the full
// body. The memoized verdict rides the X-Vcached-Memoized header on
// 304s so clients keep an accurate flag without a body.
func (s *Server) writeConditional(w http.ResponseWriter, r *http.Request, key string, payload any, memoized bool, body any) {
	if etag, ok := resultETag(key, payload); ok {
		w.Header().Set("ETag", etag)
		if inm := r.Header.Get("If-None-Match"); inm != "" && ETagMatch(inm, etag) {
			s.metrics.Counter("etag.notModified").Inc()
			w.Header().Set(MemoizedHeader, strconv.FormatBool(memoized))
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	writeJSON(w, http.StatusOK, body)
}

// MemoizedHeader carries the memoized verdict on bodiless 304
// responses.
const MemoizedHeader = "X-Vcached-Memoized"
