package oracle

import (
	"math/rand"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// Gen deterministically generates cache specifications, access patterns,
// and traces from a seed. The same seed always yields the same sequence,
// so every campaign or property failure is reproducible from its seed
// alone.
type Gen struct {
	rng *rand.Rand
}

// NewGen returns a generator seeded with seed.
func NewGen(seed int64) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(seed))}
}

// Rand exposes the underlying source for callers composing their own
// draws (property checks, fuzz harnesses).
func (g *Gen) Rand() *rand.Rand { return g.rng }

func (g *Gen) pick(vals []int) int { return vals[g.rng.Intn(len(vals))] }

// SpecOfKind returns a randomized, always-valid Spec of the given kind.
// Geometries are kept small so that conflicts are frequent and the
// reference simulator's linear scans stay cheap.
func (g *Gen) SpecOfKind(kind string) cache.Spec {
	s := cache.Spec{Kind: kind}
	switch kind {
	case "prime":
		s.C = uint(g.pick([]int{3, 5, 7}))
	case "direct":
		s.Lines = g.pick([]int{16, 64, 256})
	case "assoc":
		s.Ways = g.pick([]int{2, 4, 8})
		s.Lines = s.Ways * g.pick([]int{8, 16, 64})
		s.Policy = []string{"lru", "fifo", "random"}[g.rng.Intn(3)]
	case "full":
		s.Lines = g.pick([]int{4, 8, 32})
	case "prime-assoc":
		s.C = uint(g.pick([]int{3, 5, 7}))
		s.Ways = g.pick([]int{2, 4})
	case "skewed":
		s.Lines = g.pick([]int{16, 64, 256})
	case "victim":
		s.Lines = g.pick([]int{32, 64, 256})
		s.VictimLines = g.pick([]int{1, 2, 8})
	}
	return s.Normalize()
}

// Spec returns a randomized Spec of a random kind.
func (g *Gen) Spec() cache.Spec {
	kinds := cache.SpecKinds()
	return g.SpecOfKind(kinds[g.rng.Intn(len(kinds))])
}

// Pattern returns a randomized, always-valid trace.Pattern with bounded
// size (a single pass stays under ~4096 references).
func (g *Gen) Pattern() trace.Pattern {
	names := []string{"strided", "diagonal", "subblock", "rowcol", "fft"}
	p := trace.Pattern{
		Name:   names[g.rng.Intn(len(names))],
		Start:  uint64(g.rng.Intn(1 << 12)),
		Stream: 1 + g.rng.Intn(3),
	}
	switch p.Name {
	case "strided":
		p.Stride = int64(g.rng.Intn(129) - 64)
		if p.Stride == 0 {
			p.Stride = 1
		}
		p.N = 1 + g.rng.Intn(512)
	case "diagonal":
		p.LD = 1 + g.rng.Intn(700)
		p.N = 1 + g.rng.Intn(512)
	case "subblock":
		p.LD = 1 + g.rng.Intn(700)
		p.B1 = 1 + g.rng.Intn(24)
		p.B2 = 1 + g.rng.Intn(24)
	case "rowcol":
		p.LD = 1 + g.rng.Intn(700)
		p.N = 1 + g.rng.Intn(512)
	case "fft":
		p.B2 = g.pick([]int{2, 4, 8})
		p.N = p.B2 * (1 + g.rng.Intn(64))
	}
	return p
}

// Trace materialises a randomized workload of at most maxRefs
// references: one to three patterns, concatenated or interleaved (the
// paper's multi-stream case), with a fraction of references flipped to
// stores.
func (g *Gen) Trace(maxRefs int) trace.Trace {
	parts := make([]trace.Trace, 0, 3)
	for i, k := 0, 1+g.rng.Intn(3); i < k; i++ {
		p := g.Pattern()
		tr, err := p.Build()
		if err != nil {
			// Gen patterns are valid by construction; a failure here is
			// a generator bug worth crashing on.
			panic("oracle: generated invalid pattern " + p.String() + ": " + err.Error())
		}
		parts = append(parts, tr)
	}
	var tr trace.Trace
	if g.rng.Intn(2) == 0 {
		tr = trace.Interleave(parts...)
	} else {
		tr = trace.Concat(parts...)
	}
	if len(tr) > maxRefs {
		tr = tr[:maxRefs]
	}
	out := make(trace.Trace, len(tr))
	copy(out, tr)
	for i := range out {
		if g.rng.Intn(8) == 0 {
			out[i].Write = true
		}
	}
	return out
}
