package oracle

import (
	"fmt"
	"strings"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// victimStatser is implemented by both cache.VictimCache and refVictim;
// Diff compares the two-level counters when both sides expose them.
type victimStatser interface {
	VictimStats() cache.VictimStats
}

// Divergence describes the first observed disagreement between a fast
// simulator and its reference on one trace.
type Divergence struct {
	// Spec identifies the organisation under test (zero for factory
	// diffs).
	Spec cache.Spec
	// Step is the index of the first diverging reference, or -1 when
	// only the final statistics disagree.
	Step int
	// Ref is the diverging reference (meaningful when Step >= 0).
	Ref trace.Ref
	// Fast and Want are the per-access outcomes of the fast and
	// reference simulators at Step (Hit, Kind, eviction, and
	// interference fields are the compared subset).
	Fast, Want cache.Result
	// FastStats and WantStats are the statistics at the point of
	// divergence.
	FastStats, WantStats cache.Stats
	// Detail distinguishes the statistic-level mismatches ("stats",
	// "victim-stats") from per-access ones ("access").
	Detail string
	// Trace is the minimised counterexample: the shortest sub-trace
	// found that still diverges.
	Trace trace.Trace
}

// String renders a reproduction-oriented report.
func (d *Divergence) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "divergence (%s) on spec %q", d.Detail, d.Spec.String())
	if d.Step >= 0 {
		fmt.Fprintf(&b, " at step %d (addr=%#x write=%v stream=%d):\n", d.Step, d.Ref.Addr, d.Ref.Write, d.Ref.Stream)
		fmt.Fprintf(&b, "  fast: hit=%v kind=%v evicted=%v self=%v cross=%v\n",
			d.Fast.Hit, d.Fast.Kind, d.Fast.Evicted, d.Fast.SelfInterference, d.Fast.CrossInterference)
		fmt.Fprintf(&b, "  ref:  hit=%v kind=%v evicted=%v self=%v cross=%v\n",
			d.Want.Hit, d.Want.Kind, d.Want.Evicted, d.Want.SelfInterference, d.Want.CrossInterference)
	} else {
		b.WriteString(" in final statistics:\n")
	}
	fmt.Fprintf(&b, "  fast stats: %v\n  ref stats:  %v\n", d.FastStats, d.WantStats)
	fmt.Fprintf(&b, "  minimised counterexample (%d refs):", len(d.Trace))
	for i, r := range d.Trace {
		if i == 48 {
			fmt.Fprintf(&b, " … (+%d more)", len(d.Trace)-i)
			break
		}
		mark := ""
		if r.Write {
			mark = "w"
		}
		fmt.Fprintf(&b, " %d%s/s%d", r.Addr/8, mark, r.Stream)
	}
	return b.String()
}

// sameResult compares the organisation-independent subset of two
// per-access outcomes. Set/Way are included: the reference mirrors the
// fast simulators' placement (lowest free way first, identical victim
// choice), so a placement mismatch is a real divergence.
func sameResult(a, b cache.Result) bool {
	return a.Hit == b.Hit && a.Kind == b.Kind &&
		a.Set == b.Set && a.Way == b.Way &&
		a.Evicted == b.Evicted && a.EvictedLine == b.EvictedLine &&
		a.SelfInterference == b.SelfInterference && a.CrossInterference == b.CrossInterference
}

// Diff replays tr through spec's fast simulator and its reference and
// returns the first divergence with a minimised counterexample, or nil
// when the two agree access-for-access and in their final statistics.
func Diff(spec cache.Spec, tr trace.Trace) (*Divergence, error) {
	mk := func() (cache.Sim, cache.Sim, error) {
		fast, err := spec.Build()
		if err != nil {
			return nil, nil, err
		}
		ref, err := NewRefSim(spec)
		if err != nil {
			return nil, nil, err
		}
		return fast, ref, nil
	}
	d, err := DiffFactories(mk, tr)
	if d != nil {
		d.Spec = spec.Normalize()
	}
	return d, err
}

// DiffFactories is Diff over an arbitrary pair of simulator factories:
// mk must return a fresh fast/reference pair each call (minimisation
// replays candidate sub-traces through fresh instances).
func DiffFactories(mk func() (cache.Sim, cache.Sim, error), tr trace.Trace) (*Divergence, error) {
	d, err := diffOnce(mk, tr)
	if err != nil || d == nil {
		return d, err
	}
	d.Trace = minimise(mk, tr, d)
	return d, nil
}

// diffChunk is the batch size the fast side streams through: the
// campaign then exercises the same devirtualized batch loops production
// replay uses, while the reference stays per-access.
const diffChunk = 64

// diffOnce replays tr through one fresh pair and reports the first
// divergence without minimising. The fast side goes through
// cache.AccessBatch in chunks, so batch-path bugs (not just Access-path
// bugs) are caught by the differential campaign; on a per-access
// divergence FastStats may therefore include up to diffChunk-1 accesses
// past the diverging step.
func diffOnce(mk func() (cache.Sim, cache.Sim, error), tr trace.Trace) (*Divergence, error) {
	fast, ref, err := mk()
	if err != nil {
		return nil, err
	}
	var accs [diffChunk]cache.Access
	var outs [diffChunk]cache.Result
	for lo := 0; lo < len(tr); lo += diffChunk {
		hi := lo + diffChunk
		if hi > len(tr) {
			hi = len(tr)
		}
		n := hi - lo
		for i, r := range tr[lo:hi] {
			accs[i] = cache.Access{Addr: r.Addr, Write: r.Write, Stream: r.Stream}
		}
		cache.AccessBatch(fast, accs[:n], outs[:n])
		for i := 0; i < n; i++ {
			want := ref.Access(accs[i])
			if !sameResult(outs[i], want) {
				return &Divergence{
					Step: lo + i, Ref: tr[lo+i], Fast: outs[i], Want: want,
					FastStats: fast.Stats(), WantStats: ref.Stats(),
					Detail: "access", Trace: tr[:lo+i+1],
				}, nil
			}
		}
	}
	if gs, ws := fast.Stats(), ref.Stats(); gs != ws {
		return &Divergence{Step: -1, FastStats: gs, WantStats: ws, Detail: "stats", Trace: tr}, nil
	}
	fv, fok := fast.(victimStatser)
	rv, rok := ref.(victimStatser)
	if fok && rok {
		if gs, ws := fv.VictimStats(), rv.VictimStats(); gs != ws {
			return &Divergence{
				Step: -1, FastStats: fast.Stats(), WantStats: ref.Stats(),
				Detail: "victim-stats", Trace: tr,
			}, nil
		}
	}
	return nil, nil
}

// minimiseBudget bounds the number of replays minimisation spends.
const minimiseBudget = 2000

// minimise shrinks tr to a short sub-trace that still diverges: first
// truncate to the diverging step (per-access divergence depends only on
// the prefix), then greedily drop earlier references while the
// divergence persists.
func minimise(mk func() (cache.Sim, cache.Sim, error), tr trace.Trace, d *Divergence) trace.Trace {
	cur := tr
	if d.Step >= 0 {
		cur = tr[:d.Step+1]
	}
	diverges := func(t trace.Trace) bool {
		dd, err := diffOnce(mk, t)
		return err == nil && dd != nil
	}
	budget := minimiseBudget
	for changed := true; changed && budget > 0; {
		changed = false
		for i := len(cur) - 1; i >= 0 && budget > 0; i-- {
			cand := make(trace.Trace, 0, len(cur)-1)
			cand = append(cand, cur[:i]...)
			cand = append(cand, cur[i+1:]...)
			budget--
			if diverges(cand) {
				cur = cand
				changed = true
			}
		}
	}
	return cur
}
