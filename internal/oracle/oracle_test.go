package oracle

import (
	"strings"
	"testing"

	"primecache/internal/cache"
	"primecache/internal/membank"
	"primecache/internal/trace"
)

func TestRefModulusKnownValues(t *testing.T) {
	r := MustNewRefModulus(5) // 31
	cases := []struct{ x, want uint64 }{
		{0, 0}, {1, 1}, {30, 30}, {31, 0}, {32, 1}, {62, 0}, {1 << 20, (1 << 20) % 31},
	}
	for _, c := range cases {
		if got := r.Reduce(c.x); got != c.want {
			t.Errorf("Reduce(%d) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := r.ReduceSigned(-1); got != 30 {
		t.Errorf("ReduceSigned(-1) = %d, want 30", got)
	}
	if inv, ok := r.Inverse(0); ok || inv != 0 {
		t.Errorf("Inverse(0) = (%d,%v), want (0,false)", inv, ok)
	}
}

// TestRefSimMatchesFastAllKinds is the core tentpole check in unit-test
// form: every organisation agrees with its reference on seeded traces.
func TestRefSimMatchesFastAllKinds(t *testing.T) {
	for ki, kind := range cache.SpecKinds() {
		kind := kind
		seed := int64(101 + ki)
		t.Run(kind, func(t *testing.T) {
			g := NewGen(seed)
			for i := 0; i < 10; i++ {
				spec := g.SpecOfKind(kind)
				tr := g.Trace(512)
				d, err := Diff(spec, tr)
				if err != nil {
					t.Fatalf("trace %d: %v", i, err)
				}
				if d != nil {
					t.Fatalf("trace %d diverged:\n%s", i, d)
				}
			}
		})
	}
}

func TestCampaignSmoke(t *testing.T) {
	results, err := RunCampaign(CampaignOptions{Seed: 7, TracesPerKind: 3, MaxRefs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(cache.SpecKinds()) {
		t.Fatalf("got %d kind results, want %d", len(results), len(cache.SpecKinds()))
	}
	var b strings.Builder
	if bad := WriteCampaignReport(&b, results); bad != 0 {
		t.Fatalf("%d kinds diverged:\n%s", bad, b.String())
	}
	for _, r := range results {
		if r.Traces != 3 || r.Refs == 0 {
			t.Errorf("kind %s: traces=%d refs=%d, want 3 traces and nonzero refs", r.Kind, r.Traces, r.Refs)
		}
	}
}

func TestPropertiesHold(t *testing.T) {
	if err := CheckAll(Properties(), 11, 6); err != nil {
		t.Fatal(err)
	}
}

// offByOneMapper injects the classic off-by-one into the prime mapping:
// it reduces modulo sets−1 instead of sets (as if the EAC adder's
// end-around wrap used 2^c − 2). It still claims Sets() sets, so every
// index is in range and nothing crashes — only the theorems notice.
type offByOneMapper struct{ sets int }

func (m offByOneMapper) Index(lineAddr uint64) int { return int(lineAddr % uint64(m.sets-1)) }
func (m offByOneMapper) Sets() int                 { return m.sets }
func (m offByOneMapper) Name() string              { return "off-by-one" }

// TestMutatedMapperTripsProperties demonstrates the property suite has
// teeth: at least four of the five mapper theorems must fail on the
// mutated mapper (base-translation invariance legitimately survives,
// because the mutant is still a translation-covariant linear map).
func TestMutatedMapperTripsProperties(t *testing.T) {
	props := MapperProperties(offByOneMapper{sets: 31})
	failed := 0
	var names []string
	for _, p := range props {
		if err := CheckAll([]Property{p}, 1, 8); err != nil {
			failed++
			names = append(names, p.Name)
			t.Logf("tripped (good): %s", p.Name)
		}
	}
	if failed < 4 {
		t.Fatalf("only %d/%d properties tripped on the off-by-one mapper (%v); want >= 4", failed, len(props), names)
	}
}

// TestDiffReportsAndMinimises checks the driver itself: a deliberately
// mismatched pair (direct 32 lines vs reference of a direct 64-line
// spec) must diverge, and the counterexample must be minimised.
func TestDiffReportsAndMinimises(t *testing.T) {
	mk := func() (cache.Sim, cache.Sim, error) {
		fast, err := cache.NewDirect(32)
		if err != nil {
			return nil, nil, err
		}
		ref, err := NewRefSim(cache.Spec{Kind: "direct", Lines: 64}.Normalize())
		if err != nil {
			return nil, nil, err
		}
		return fast, ref, nil
	}
	tr := trace.Concat(
		trace.Strided(0, 1, 64, 1),
		trace.Strided(0, 1, 64, 1),
	)
	d, err := DiffFactories(mk, tr)
	if err != nil {
		t.Fatal(err)
	}
	if d == nil {
		t.Fatal("expected a divergence between 32- and 64-line direct caches")
	}
	if len(d.Trace) == 0 || len(d.Trace) > 4 {
		t.Errorf("minimised counterexample has %d refs, want 1..4", len(d.Trace))
	}
	s := d.String()
	for _, want := range []string{"divergence", "minimised counterexample"} {
		if !strings.Contains(s, want) {
			t.Errorf("report %q missing %q", s, want)
		}
	}
}

// TestDiffAgreesIdenticalPair: sanity that Diff is quiet when fast and
// reference are literally the same organisation.
func TestDiffAgreesIdenticalPair(t *testing.T) {
	g := NewGen(42)
	spec := cache.Spec{Kind: "prime", C: 5}.Normalize()
	for i := 0; i < 5; i++ {
		d, err := Diff(spec, g.Trace(400))
		if err != nil {
			t.Fatal(err)
		}
		if d != nil {
			t.Fatalf("unexpected divergence:\n%s", d)
		}
	}
}

func TestRefVectorLoadMatchesFast(t *testing.T) {
	g := NewGen(1234)
	rng := g.Rand()
	for i := 0; i < 300; i++ {
		banks := 1 << (1 + rng.Intn(6))
		tm := 1 + rng.Intn(16)
		sys, err := membank.New(banks, tm)
		if err != nil {
			t.Fatal(err)
		}
		start := uint64(rng.Intn(1 << 20))
		stride := int64(rng.Intn(1<<12) - 1<<11)
		n := rng.Intn(300)
		got := sys.VectorLoad(start, stride, n)
		want := RefVectorLoad(banks, tm, start, stride, n)
		if got != want {
			t.Fatalf("banks=%d tm=%d start=%d stride=%d n=%d: fast %+v, ref %+v",
				banks, tm, start, stride, n, got, want)
		}
		if gv, wv := membank.BanksVisited(banks, stride), RefBanksVisited(banks, stride); gv != wv {
			t.Fatalf("BanksVisited(%d,%d) = %d, brute force %d", banks, stride, gv, wv)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, b := NewGen(99), NewGen(99)
	for i := 0; i < 20; i++ {
		sa, sb := a.Spec(), b.Spec()
		if sa != sb {
			t.Fatalf("iteration %d: specs diverged: %v vs %v", i, sa, sb)
		}
		ta, tb := a.Trace(256), b.Trace(256)
		if len(ta) != len(tb) {
			t.Fatalf("iteration %d: trace lengths %d vs %d", i, len(ta), len(tb))
		}
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("iteration %d ref %d: %+v vs %+v", i, j, ta[j], tb[j])
			}
		}
	}
}
