package oracle

import (
	"fmt"
	"math/big"

	"primecache/internal/mersenne"
)

// RefModulus is the reference mirror of mersenne.Modulus: every
// operation is delegated to math/big against the architectural
// definition x mod (2^c − 1), with none of the c-bit end-around-carry
// folding the fast path uses. It is deliberately slow.
type RefModulus struct {
	c uint
	m *big.Int
}

// NewRefModulus returns the reference modulus 2^c − 1, accepting the
// same exponent range as mersenne.New.
func NewRefModulus(c uint) (*RefModulus, error) {
	if _, err := mersenne.New(c); err != nil {
		return nil, err
	}
	m := new(big.Int).Lsh(big.NewInt(1), c)
	m.Sub(m, big.NewInt(1))
	return &RefModulus{c: c, m: m}, nil
}

// MustNewRefModulus is NewRefModulus but panics on error.
func MustNewRefModulus(c uint) *RefModulus {
	r, err := NewRefModulus(c)
	if err != nil {
		panic(err)
	}
	return r
}

// C returns the exponent c.
func (r *RefModulus) C() uint { return r.c }

// Value returns the modulus 2^c − 1.
func (r *RefModulus) Value() uint64 { return r.m.Uint64() }

// Reduce returns x mod (2^c − 1) by big.Int division.
func (r *RefModulus) Reduce(x uint64) uint64 {
	v := new(big.Int).SetUint64(x)
	return v.Mod(v, r.m).Uint64()
}

// ReduceSigned returns x mod (2^c − 1) for signed x, in [0, 2^c−2].
// big.Int.Mod implements Euclidean division, so the result is already
// non-negative.
func (r *RefModulus) ReduceSigned(x int64) uint64 {
	v := big.NewInt(x)
	return v.Mod(v, r.m).Uint64()
}

// Add returns (a + b) mod (2^c − 1).
func (r *RefModulus) Add(a, b uint64) uint64 {
	v := new(big.Int).SetUint64(a)
	v.Add(v, new(big.Int).SetUint64(b))
	return v.Mod(v, r.m).Uint64()
}

// Sub returns (a − b) mod (2^c − 1).
func (r *RefModulus) Sub(a, b uint64) uint64 {
	v := new(big.Int).SetUint64(a)
	v.Sub(v, new(big.Int).SetUint64(b))
	return v.Mod(v, r.m).Uint64()
}

// Mul returns (a · b) mod (2^c − 1) with a full multiprecision product,
// unlike the fast path which relies on residues fitting in 31 bits.
func (r *RefModulus) Mul(a, b uint64) uint64 {
	v := new(big.Int).SetUint64(a)
	v.Mul(v, new(big.Int).SetUint64(b))
	return v.Mod(v, r.m).Uint64()
}

// Congruent reports whether a ≡ b (mod 2^c − 1).
func (r *RefModulus) Congruent(a, b uint64) bool { return r.Reduce(a) == r.Reduce(b) }

// Inverse returns the multiplicative inverse of a modulo 2^c − 1 via
// big.Int.ModInverse, and false when none exists.
func (r *RefModulus) Inverse(a uint64) (uint64, bool) {
	v := new(big.Int).SetUint64(a)
	inv := new(big.Int).ModInverse(v, r.m)
	if inv == nil {
		return 0, false
	}
	return inv.Uint64(), true
}

// String implements fmt.Stringer.
func (r *RefModulus) String() string { return fmt.Sprintf("ref 2^%d-1 (%s)", r.c, r.m) }
