package oracle

import (
	"fmt"
	"io"

	"primecache/internal/cache"
)

// CampaignOptions configures a bounded differential campaign. The zero
// value selects the defaults used by `make oracle`.
type CampaignOptions struct {
	// Seed is the master seed; each organisation derives its own
	// generator from it (default 1).
	Seed int64
	// TracesPerKind is the number of seeded traces replayed per cache
	// organisation (default 100).
	TracesPerKind int
	// MaxRefs bounds each trace's length (default 1024).
	MaxRefs int
}

func (o CampaignOptions) withDefaults() CampaignOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.TracesPerKind == 0 {
		o.TracesPerKind = 100
	}
	if o.MaxRefs == 0 {
		o.MaxRefs = 1024
	}
	return o
}

// KindResult is the campaign outcome for one cache organisation.
type KindResult struct {
	Kind string
	// Traces and Refs count the work done before stopping.
	Traces int
	Refs   int
	// Divergence is the first divergence found, nil when the kind
	// passed.
	Divergence *Divergence
	// Seed reproduces the kind's whole trace sequence via NewGen.
	Seed int64
}

// OK reports whether the kind completed without divergence.
func (r KindResult) OK() bool { return r.Divergence == nil }

// RunCampaign replays TracesPerKind seeded traces through the fast and
// reference implementations of every cache organisation and returns one
// result per kind, stopping a kind at its first divergence. The error
// is non-nil only for infrastructure failures (a generated spec that
// does not build), never for divergences.
func RunCampaign(opt CampaignOptions) ([]KindResult, error) {
	opt = opt.withDefaults()
	kinds := cache.SpecKinds()
	results := make([]KindResult, 0, len(kinds))
	for ki, kind := range kinds {
		seed := opt.Seed + int64(ki)*1_000_003
		g := NewGen(seed)
		res := KindResult{Kind: kind, Seed: seed}
		for i := 0; i < opt.TracesPerKind; i++ {
			spec := g.SpecOfKind(kind)
			tr := g.Trace(opt.MaxRefs)
			d, err := Diff(spec, tr)
			if err != nil {
				return results, fmt.Errorf("oracle: campaign kind %s trace %d: %w", kind, i, err)
			}
			res.Traces++
			res.Refs += len(tr)
			if d != nil {
				res.Divergence = d
				break
			}
		}
		results = append(results, res)
	}
	return results, nil
}

// WriteCampaignReport renders campaign results, one line per kind plus a
// verdict, and returns the number of divergences.
func WriteCampaignReport(w io.Writer, results []KindResult) int {
	bad := 0
	for _, r := range results {
		status := "ok"
		if !r.OK() {
			status = "DIVERGED"
			bad++
		}
		fmt.Fprintf(w, "oracle: kind=%-12s traces=%-4d refs=%-8d seed=%-10d %s\n",
			r.Kind, r.Traces, r.Refs, r.Seed, status)
		if !r.OK() {
			fmt.Fprintf(w, "%s\n", r.Divergence)
		}
	}
	return bad
}
