package oracle

import (
	"math/rand"
	"testing"

	"primecache/internal/cache"
)

// TestStridedAnalyticDirected pins the closed form against replay on the
// regime boundaries: orbit exactly filled (n = o, n = C), one past the
// shadow capacity (n = C+1), degenerate one-set orbits (stride a
// multiple of C), power-of-two strides, backwards sweeps, and n = 1.
func TestStridedAnalyticDirected(t *testing.T) {
	type tc struct {
		spec   cache.Spec
		start  uint64
		stride int64
		n      int
		passes int
	}
	prime5 := cache.Spec{Kind: "prime", C: 5}    // C = 31
	prime7 := cache.Spec{Kind: "prime", C: 7}    // C = 127
	direct := cache.Spec{Kind: "direct", Lines: 64}
	cases := []tc{
		{prime5, 0, 1, 31, 3},      // unit stride, n = C: conflict-free fill
		{prime5, 0, 1, 32, 3},      // n = C+1: capacity regime
		{prime5, 100, 31, 10, 3},   // stride = C: one-set orbit
		{prime5, 100, 62, 40, 2},   // stride = 2C, n > C
		{prime5, 7, 32, 31, 3},     // stride = C+1 ≡ 1: conflict-free
		{prime5, 7, 8, 31, 2},      // power-of-two stride, prime C: coprime
		{prime7, 0, 64, 127, 3},    // 2^6 stride over 127 sets
		{prime7, 0, 64, 128, 2},    // same, one past capacity
		{direct, 0, 1, 64, 3},      // unit stride fills direct cache
		{direct, 0, 16, 64, 3},     // 2^4 stride folds onto 4 sets
		{direct, 0, 16, 6, 2},      // fold, n > o with q=1 remainder
		{direct, 5, 64, 9, 3},      // stride = C: one set
		{direct, 1 << 19, -3, 100, 2}, // backwards sweep
		{prime5, 9, 5, 1, 2},       // single element
		{direct, 3, 96, 130, 2},    // non-power-of-two stride, n > C
	}
	for _, c := range cases {
		if err := VerifyStridedAnalytic(c.spec, c.start, c.stride, c.n, c.passes, 1); err != nil {
			t.Error(err)
		}
	}
	// StreamNone: conflict misses stay unattributed.
	if err := VerifyStridedAnalytic(prime5, 0, 62, 20, 3, cache.StreamNone); err != nil {
		t.Error(err)
	}
}

// TestStridedAnalyticRandomized hammers the metamorphic property far
// beyond the default suite's round count.
func TestStridedAnalyticRandomized(t *testing.T) {
	const seed, rounds = 20260806, 400
	t.Logf("seed %d", seed)
	p := stridedAnalyticProperty()
	rng := rand.New(rand.NewSource(seed))
	for r := 0; r < rounds; r++ {
		if err := p.Check(rng); err != nil {
			t.Fatalf("round %d: %v", r, err)
		}
	}
}

// TestStridedAnalyticRejects pins the model's refusals: unsupported
// organisations, zero stride, and address ranges that could wrap.
func TestStridedAnalyticRejects(t *testing.T) {
	reject := []struct {
		name   string
		spec   cache.Spec
		start  uint64
		stride int64
		n      int
	}{
		{"assoc kind", cache.Spec{Kind: "assoc", Lines: 64, Ways: 4}, 0, 1, 16},
		{"skewed kind", cache.Spec{Kind: "skewed", Lines: 64}, 0, 1, 16},
		{"zero stride", cache.Spec{Kind: "prime", C: 5}, 0, 0, 16},
		{"huge start", cache.Spec{Kind: "prime", C: 5}, 1 << 62, 1, 16},
		{"wrapping sweep", cache.Spec{Kind: "prime", C: 5}, 0, 1 << 60, 16},
		{"negative past zero", cache.Spec{Kind: "direct", Lines: 64}, 10, -7, 16},
	}
	for _, c := range reject {
		if _, ok := cache.StridedSweepStats(c.spec, c.start, c.stride, c.n, 2, 1); ok {
			t.Errorf("%s: StridedSweepStats accepted spec=%s start=%d stride=%d n=%d, want rejection",
				c.name, c.spec, c.start, c.stride, c.n)
		}
	}
	if _, ok := cache.StridedSweepStats(cache.Spec{Kind: "prime", C: 5}, 0, 3, 16, 0, 1); ok {
		t.Error("StridedSweepStats accepted passes=0, want rejection")
	}
}
