// Package oracle is the differential-testing layer of the repository:
// slow-but-obviously-correct reference implementations of the fast
// simulators, executable metamorphic properties encoding the paper's
// theorems, and a seeded trace generator plus Diff driver that replays
// the same workload through a fast implementation and its reference and
// reports the first divergence with a minimised counterexample.
//
// The package mirrors three fast subsystems:
//
//   - mersenne.Modulus  → RefModulus      (math/big modular arithmetic)
//   - cache.Spec.Build  → NewRefSim       (naive map-backed simulator for
//     all seven organisations: prime, direct, assoc, full, prime-assoc,
//     skewed, victim)
//   - membank.System    → RefVectorLoad   (brute-force bank reservation
//     scan) and RefBanksVisited
//
// The fast implementations earn their speed with end-around-carry
// folding, bit masks, and linked-list LRU structures; the references
// spend it on big.Int division, per-access linear scans, and slices, so
// a bug has to be present in two very different shapes to go unnoticed.
//
// Three consumers are wired on top:
//
//   - go test -fuzz targets in internal/mersenne, internal/cache, and
//     internal/membank feed fuzzer-chosen inputs through both sides;
//   - `make oracle` (cmd/oracle) runs a bounded campaign of seeded
//     traces per cache organisation and fails on any divergence;
//   - the property suite (Properties, CheckAll) re-checks the paper's
//     theorems — conflict-free coprime strides, power-of-two stride
//     degradation, translation invariance, the EAC adder ≡ mod 2^c−1 —
//     on every run, and demonstrably fails when an off-by-one is
//     injected into the prime mapper.
//
// See TUTORIAL.md §9 ("Verifying the simulator") for how to reproduce a
// reported divergence and how to add a new property.
package oracle
