package oracle

import (
	"fmt"
	"math/rand"
	"strings"

	"primecache/internal/cache"
	"primecache/internal/membank"
	"primecache/internal/mersenne"
	"primecache/internal/trace"
)

// Property is one executable metamorphic check derived from the paper.
// Check runs a single randomized round and returns a descriptive error
// on violation; properties are pure in the generator (the same rng
// state yields the same round).
type Property struct {
	Name      string
	Statement string
	Check     func(rng *rand.Rand) error
}

// CheckAll runs every property for rounds rounds each, deriving one rng
// per property from seed, and returns all violations joined into one
// error (nil when every round of every property holds).
func CheckAll(props []Property, seed int64, rounds int) error {
	var fails []string
	for i, p := range props {
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		for r := 0; r < rounds; r++ {
			if err := p.Check(rng); err != nil {
				fails = append(fails, fmt.Sprintf("%s (round %d): %v", p.Name, r, err))
				break
			}
		}
	}
	if len(fails) > 0 {
		return fmt.Errorf("oracle: %d propert%s violated:\n  %s",
			len(fails), map[bool]string{true: "y", false: "ies"}[len(fails) == 1],
			strings.Join(fails, "\n  "))
	}
	return nil
}

// gcd64 is the plain Euclid used by property stride selection.
func gcd64(a, b uint64) uint64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// MapperProperties encodes the paper's §3 theorems about the prime
// mapping as checks against an arbitrary cache.Mapper claiming C =
// m.Sets() lines. Run against the production PrimeMapper they must all
// hold; run against a mutated mapper (an off-by-one modulus, a dropped
// carry fold) at least four of the five fail, which is how the tests
// demonstrate the suite has teeth.
func MapperProperties(m cache.Mapper) []Property {
	C := uint64(m.Sets())

	// randStride returns a stride in [1, 1<<16] that is not a multiple
	// of C — the paper's condition for conflict freedom (for prime C
	// this is exactly gcd(s, C) = 1).
	randStride := func(rng *rand.Rand) uint64 {
		for {
			s := 1 + uint64(rng.Intn(1<<16))
			if s%C != 0 && gcd64(s, C) == 1 {
				return s
			}
		}
	}
	randBase := func(rng *rand.Rand) uint64 { return uint64(rng.Intn(1 << 30)) }

	// sweepMisses builds a fresh direct-mapped cache over m and replays
	// `passes` passes of an n-element stride-s word sweep, returning the
	// per-pass stats.
	sweepMisses := func(base, s uint64, n, passes int) ([]cache.Stats, error) {
		c, err := cache.New(cache.Config{Mapper: m, Ways: 1})
		if err != nil {
			return nil, err
		}
		tr := trace.Strided(base, int64(s), n, 1)
		out := make([]cache.Stats, passes)
		for p := range out {
			out[p] = trace.Replay(c, tr)
		}
		return out, nil
	}

	return []Property{
		{
			Name:      "index-equals-mod",
			Statement: "the mapper's set index is lineAddr mod C, C = 2^c − 1 (EAC reduction ≡ architectural modulus)",
			Check: func(rng *rand.Rand) error {
				ref := MustNewRefModulusFor(C)
				for i := 0; i < 64; i++ {
					line := rng.Uint64()
					got := m.Index(line)
					want := int(ref.Reduce(line))
					if got != want {
						return fmt.Errorf("Index(%#x) = %d, want %d mod %d", line, got, want, C)
					}
				}
				return nil
			},
		},
		{
			Name:      "coprime-stride-distinct",
			Statement: "a stride not a multiple of C maps n ≤ C consecutive vector elements to n distinct lines (paper §3)",
			Check: func(rng *rand.Rand) error {
				s, base := randStride(rng), randBase(rng)
				n := int(C)
				if n > 512 {
					n = 512
				}
				seen := map[int]uint64{}
				for i := 0; i < n; i++ {
					line := base + uint64(i)*s
					idx := m.Index(line)
					if prev, ok := seen[idx]; ok {
						return fmt.Errorf("stride %d base %d: lines %d and %d collide on set %d", s, base, prev, line, idx)
					}
					seen[idx] = line
				}
				return nil
			},
		},
		{
			Name:      "coprime-stride-conflict-free",
			Statement: "repeated sweeps of a coprime-stride vector of length ≤ C incur zero misses after the first pass (paper §3, conflict-free access)",
			Check: func(rng *rand.Rand) error {
				s, base := randStride(rng), randBase(rng)
				n := int(C)
				if n > 256 {
					n = 256
				}
				passes, err := sweepMisses(base, s, n, 3)
				if err != nil {
					return err
				}
				for p := 1; p < len(passes); p++ {
					if passes[p].Misses != 0 {
						return fmt.Errorf("stride %d base %d n %d: pass %d has %d misses, want 0",
							s, base, n, p+1, passes[p].Misses)
					}
				}
				return nil
			},
		},
		{
			Name:      "full-coverage",
			Statement: "C consecutive lines fill all C sets exactly once (the §4 utilization claim: a conflict-free vector uses the whole cache)",
			Check: func(rng *rand.Rand) error {
				base := randBase(rng)
				counts := make([]int, C)
				for i := uint64(0); i < C; i++ {
					idx := m.Index(base + i)
					if idx < 0 || idx >= int(C) {
						return fmt.Errorf("Index(%d) = %d out of range [0,%d)", base+i, idx, C)
					}
					counts[idx]++
				}
				for set, n := range counts {
					if n != 1 {
						return fmt.Errorf("base %d: set %d holds %d of the %d consecutive lines, want exactly 1", base, set, n, C)
					}
				}
				return nil
			},
		},
		{
			Name:      "base-translation-invariance",
			Statement: "miss counts of a strided sweep are invariant under translating the base address (modulus mapping permutes sets)",
			Check: func(rng *rand.Rand) error {
				s := 1 + uint64(rng.Intn(1<<12)) // any stride, coprime or not
				base := randBase(rng)
				delta := uint64(rng.Intn(1 << 20))
				n := 1 + rng.Intn(256)
				a, err := sweepMisses(base, s, n, 2)
				if err != nil {
					return err
				}
				b, err := sweepMisses(base+delta, s, n, 2)
				if err != nil {
					return err
				}
				for p := range a {
					if a[p] != b[p] {
						return fmt.Errorf("stride %d n %d: pass %d stats differ under base translation %d→%d:\n  %v\n  %v",
							s, n, p+1, base, base+delta, a[p], b[p])
					}
				}
				return nil
			},
		},
	}
}

// refModCache memoizes RefModulus values by modulus so property loops do
// not rebuild big.Ints per access.
var refModCache = map[uint64]*RefModulus{}

// MustNewRefModulusFor returns the RefModulus whose value is m, which
// must be 2^c − 1 for a supported exponent c.
func MustNewRefModulusFor(m uint64) *RefModulus {
	if r, ok := refModCache[m]; ok {
		return r
	}
	for c := uint(2); c <= mersenne.MaxExponent; c++ {
		if uint64(1)<<c-1 == m {
			r := MustNewRefModulus(c)
			refModCache[m] = r
			return r
		}
	}
	panic(fmt.Sprintf("oracle: %d is not a Mersenne number 2^c-1 with 2 <= c <= %d", m, mersenne.MaxExponent))
}

// PrimeMapperProperties instantiates MapperProperties for the
// production prime mapper with exponent c.
func PrimeMapperProperties(c uint) ([]Property, error) {
	m, err := cache.NewPrimeMapper(c)
	if err != nil {
		return nil, err
	}
	props := MapperProperties(m)
	for i := range props {
		props[i].Name = fmt.Sprintf("prime-c%d/%s", c, props[i].Name)
	}
	return props, nil
}

// adderProperty cross-checks the end-around-carry arithmetic of every
// supported Mersenne prime modulus against math/big.
func adderProperty() Property {
	return Property{
		Name:      "eac-adder-equals-big-mod",
		Statement: "the end-around-carry adder computes A mod (2^c − 1): Reduce/Add/Sub/MulMod/ReduceSigned/Inverse agree with math/big for every prime exponent",
		Check: func(rng *rand.Rand) error {
			for _, c := range mersenne.PrimeExponents() {
				m := mersenne.MustNew(c)
				ref := MustNewRefModulusFor(m.Value())
				x, y := rng.Uint64(), rng.Uint64()
				if got, want := m.Reduce(x), ref.Reduce(x); got != want {
					return fmt.Errorf("c=%d Reduce(%#x) = %d, want %d", c, x, got, want)
				}
				if got, _ := m.ReduceSteps(x); got != ref.Reduce(x) {
					return fmt.Errorf("c=%d ReduceSteps(%#x) = %d, want %d", c, x, got, ref.Reduce(x))
				}
				sx := int64(x)
				if got, want := m.ReduceSigned(sx), ref.ReduceSigned(sx); got != want {
					return fmt.Errorf("c=%d ReduceSigned(%d) = %d, want %d", c, sx, got, want)
				}
				a := uint64(rng.Int63n(int64(m.Value() + 1)))
				b := uint64(rng.Int63n(int64(m.Value() + 1)))
				if got, want := m.Add(a, b), ref.Add(a, b); got != want {
					return fmt.Errorf("c=%d Add(%d,%d) = %d, want %d", c, a, b, got, want)
				}
				if got, want := m.Sub(a, b), ref.Sub(a, b); got != want {
					return fmt.Errorf("c=%d Sub(%d,%d) = %d, want %d", c, a, b, got, want)
				}
				if got, want := m.MulMod(x, y), ref.Mul(x, y); got != want {
					return fmt.Errorf("c=%d MulMod(%#x,%#x) = %d, want %d", c, x, y, got, want)
				}
				inv, ok := m.Inverse(a)
				rinv, rok := ref.Inverse(a)
				if ok != rok || (ok && inv != rinv) {
					return fmt.Errorf("c=%d Inverse(%d) = (%d,%v), want (%d,%v)", c, a, inv, ok, rinv, rok)
				}
				if ok && m.MulMod(a, inv) != 1 {
					return fmt.Errorf("c=%d a·a⁻¹ = %d, want 1", c, m.MulMod(a, inv))
				}
			}
			return nil
		},
	}
}

// directPow2Property encodes the paper's motivating observation in
// exact form: under bit-selection mapping, a power-of-two stride folds a
// sweep onto L/2^k sets, and the second-pass miss count is exactly
// predictable from the pigeonhole distribution of lines over sets.
func directPow2Property() Property {
	return Property{
		Name:      "direct-pow2-stride-misses",
		Statement: "a 2^k-stride sweep of a direct-mapped 2^l-line cache has a second-pass miss count exactly predicted by line folding (paper §1–2)",
		Check: func(rng *rand.Rand) error {
			L := []int{16, 64, 256, 1024}[rng.Intn(4)]
			maxK := 0
			for 1<<(maxK+1) <= L {
				maxK++
			}
			k := rng.Intn(maxK + 1)
			s := uint64(1) << k
			n := 1 + rng.Intn(2*L)
			base := uint64(rng.Intn(1 << 20))

			c, err := cache.NewDirect(L)
			if err != nil {
				return err
			}
			tr := trace.Strided(base, int64(s), n, 1)
			trace.Replay(c, tr)
			second := trace.Replay(c, tr)

			// The n distinct words fold onto o = L/2^k sets. With q =
			// n/o lines per set and r = n%o sets holding one extra, a
			// set holding one line always hits on pass 2 and a set
			// holding ≥ 2 lines thrashes on every access (cyclic order
			// against a 1-way set).
			o := L >> k
			var predicted uint64
			if n > o {
				q, r := n/o, n%o
				singles := 0
				if q == 1 {
					singles = o - r
				}
				predicted = uint64(n - singles)
			}
			if second.Misses != predicted {
				return fmt.Errorf("L=%d stride=%d n=%d: pass-2 misses = %d, predicted %d", L, s, n, second.Misses, predicted)
			}
			return nil
		},
	}
}

// bankConflictProperty encodes the interleaved-memory analogue (§2.3,
// Oed & Lange): an odd stride visits all 2^m banks and, when the bank
// count covers the access time, incurs zero stalls; and the closed-form
// BanksVisited matches brute-force enumeration.
func bankConflictProperty() Property {
	return Property{
		Name:      "bank-conflict-free-odd-stride",
		Statement: "an odd-stride sweep of 2^m ≥ t_m interleaved banks proceeds without stalls, and BanksVisited = M/gcd(M,s) matches enumeration",
		Check: func(rng *rand.Rand) error {
			m := 2 + rng.Intn(5) // 4..64 banks
			banks := 1 << m
			tm := 1 + rng.Intn(banks) // tm <= M: full bandwidth regime
			sys, err := membank.New(banks, tm)
			if err != nil {
				return err
			}
			s := int64(2*rng.Intn(1<<10) + 1) // odd
			if rng.Intn(2) == 0 {
				s = -s
			}
			n := 1 + rng.Intn(512)
			start := uint64(rng.Intn(1 << 20))
			res := sys.VectorLoad(start, s, n)
			if res.StallCycles != 0 {
				return fmt.Errorf("banks=%d tm=%d stride=%d n=%d: %d stall cycles, want 0", banks, tm, s, n, res.StallCycles)
			}
			if got, want := membank.BanksVisited(banks, s), banks; got != want {
				return fmt.Errorf("BanksVisited(%d, %d) = %d, want %d", banks, s, got, want)
			}
			// Arbitrary (possibly even) stride: formula vs brute force.
			s2 := int64(rng.Intn(1 << 12))
			if got, want := membank.BanksVisited(banks, s2), RefBanksVisited(banks, s2); got != want {
				return fmt.Errorf("BanksVisited(%d, %d) = %d, brute force says %d", banks, s2, got, want)
			}
			return nil
		},
	}
}

// Properties returns the full default suite: the paper's mapper theorems
// instantiated for the production prime mapper at c=5 and c=13, the EAC
// adder cross-check, the direct-mapped power-of-two stride law, the
// memory-bank analogue, and the analytic strided-sweep cross-check.
func Properties() []Property {
	var props []Property
	for _, c := range []uint{5, 13} {
		ps, err := PrimeMapperProperties(c)
		if err != nil {
			panic(err) // 5 and 13 are Mersenne prime exponents by construction
		}
		props = append(props, ps...)
	}
	props = append(props, adderProperty(), directPow2Property(), bankConflictProperty(),
		stridedAnalyticProperty())
	return props
}
