package oracle

import "primecache/internal/membank"

// refBank mirrors membank's bank decode: Euclidean remainder so that
// negative addresses (from negative strides walking below the start)
// land in [0, banks).
func refBank(addr int64, banks int) int {
	b := addr % int64(banks)
	if b < 0 {
		b += int64(banks)
	}
	return int(b)
}

// RefVectorLoad is the obviously-correct mirror of
// membank.System.VectorLoad: instead of per-bank busy-until registers it
// keeps every bank's full reservation list and scans it, issuing each
// element at the earliest bus slot that does not overlap an existing
// reservation on its bank.
func RefVectorLoad(banks, tm int, start uint64, stride int64, n int) membank.LoadResult {
	if n <= 0 {
		return membank.LoadResult{}
	}
	reservations := make([][]int64, banks)
	last := int64(-1)
	for i := 0; i < n; i++ {
		addr := int64(start) + int64(i)*stride
		bank := refBank(addr, banks)
		// The bus delivers at most one element per cycle, so the
		// earliest candidate issue slot is one past the previous issue.
		t := last + 1
		for {
			conflict := false
			for _, r := range reservations[bank] {
				if t < r+int64(tm) && t >= r {
					t = r + int64(tm)
					conflict = true
				}
			}
			if !conflict {
				break
			}
		}
		reservations[bank] = append(reservations[bank], t)
		last = t
	}
	return membank.LoadResult{
		Elements:    n,
		FinishCycle: last + int64(tm),
		StallCycles: last - int64(n-1),
	}
}

// RefBanksVisited counts the distinct banks touched by an infinite
// stride-s walk by direct enumeration over one period (banks steps
// always suffice: bank(i·s) is periodic with period dividing banks).
func RefBanksVisited(banks int, stride int64) int {
	if stride == 0 {
		return 1
	}
	seen := make(map[int]bool, banks)
	for i := 0; i < banks; i++ {
		seen[refBank(int64(i)*stride, banks)] = true
	}
	return len(seen)
}
