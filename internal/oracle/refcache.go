package oracle

import (
	"fmt"
	"math/big"
	"math/rand"

	"primecache/internal/cache"
)

// refWordBytes is the line size every Spec-built organisation uses (the
// paper's fixed 8-byte line).
const refWordBytes = 8

// NewRefSim returns the naive reference simulator for spec: the same
// observable behaviour as spec.Build() — per-access Result.Hit, miss
// kind, interference attribution, evictions, and the final Stats — but
// arrived at with maps, slices, and math/big division instead of bit
// masks, end-around-carry folds, and linked-list LRU structures. All
// seven Spec kinds are covered. Like the fast simulators, the result is
// not safe for concurrent use.
func NewRefSim(spec cache.Spec) (cache.Sim, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	switch spec.Kind {
	case "prime":
		return newRefAssoc(spec, bigModIndex(spec.C), (1<<spec.C)-1, 1, cache.LRU, true)
	case "direct":
		return newRefAssoc(spec, plainModIndex(spec.Lines), spec.Lines, 1, cache.LRU, true)
	case "assoc":
		pol, err := cache.ParsePolicy(spec.Policy)
		if err != nil {
			return nil, err
		}
		sets := spec.Lines / spec.Ways
		return newRefAssoc(spec, plainModIndex(sets), sets, spec.Ways, pol, true)
	case "full":
		return newRefAssoc(spec, func(uint64) int { return 0 }, 1, spec.Lines, cache.LRU, true)
	case "prime-assoc":
		return newRefAssoc(spec, bigModIndex(spec.C), (1<<spec.C)-1, spec.Ways, cache.LRU, true)
	case "skewed":
		return newRefSkewed(spec.Lines)
	case "victim":
		return newRefVictim(spec.Lines, spec.VictimLines)
	default:
		return nil, fmt.Errorf("oracle: unknown spec kind %q", spec.Kind)
	}
}

// bigModIndex returns a set-index function computing lineAddr mod
// (2^c − 1) by big.Int division — the architectural definition the
// hardware EAC adder is supposed to implement.
func bigModIndex(c uint) func(uint64) int {
	m := new(big.Int).Lsh(big.NewInt(1), c)
	m.Sub(m, big.NewInt(1))
	x := new(big.Int)
	return func(line uint64) int {
		x.SetUint64(line)
		return int(x.Mod(x, m).Uint64())
	}
}

// plainModIndex returns lineAddr mod sets by integer division, where
// the fast path masks low bits.
func plainModIndex(sets int) func(uint64) int {
	return func(line uint64) int { return int(line % uint64(sets)) }
}

// refShadow is a fully-associative LRU directory kept as a plain slice
// in LRU→MRU order — the reference mirror of the fast simulator's
// map-plus-linked-list shadow used for the 3C miss split.
type refShadow struct {
	cap   int
	order []uint64
}

// touch reports whether line was present, promoting or inserting it and
// evicting the least-recently-used entry when over capacity.
func (s *refShadow) touch(line uint64) bool {
	for i, l := range s.order {
		if l == line {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), line)
			return true
		}
	}
	s.order = append(s.order, line)
	if len(s.order) > s.cap {
		s.order = s.order[1:]
	}
	return false
}

func (s *refShadow) reset() { s.order = nil }

// refEntry is one cached line in a reference simulator.
type refEntry struct {
	line    uint64
	lastUse uint64
	filled  uint64
}

// refAssoc is the naive set-associative simulator behind the prime,
// direct, assoc, full, and prime-assoc kinds: per set, a map from way
// slot to entry; hits and victims found by linear scan.
type refAssoc struct {
	desc           string
	sets, ways     int
	policy         cache.Policy
	index          func(uint64) int
	countMemWrites bool // the array cache counts write-through traffic; skewed does not

	frames    []map[int]*refEntry
	clock     uint64
	rng       *rand.Rand
	seen      map[uint64]bool
	shadow    *refShadow
	evictedBy map[uint64]int
	stats     cache.Stats
}

func newRefAssoc(spec cache.Spec, index func(uint64) int, sets, ways int, policy cache.Policy, memWrites bool) (*refAssoc, error) {
	if sets <= 0 || ways <= 0 {
		return nil, fmt.Errorf("oracle: degenerate geometry %d sets × %d ways", sets, ways)
	}
	r := &refAssoc{
		desc:           "ref " + spec.String(),
		sets:           sets,
		ways:           ways,
		policy:         policy,
		index:          index,
		countMemWrites: memWrites,
		// The fast cache seeds its Random-policy source with
		// Config.Seed, which Spec.Build leaves at 0; randomness is a
		// specified input here, not a theorem, so the reference draws
		// from an identically-seeded source.
		rng: rand.New(rand.NewSource(0)),
	}
	r.resetState()
	return r, nil
}

func (r *refAssoc) resetState() {
	r.frames = make([]map[int]*refEntry, r.sets)
	for i := range r.frames {
		r.frames[i] = map[int]*refEntry{}
	}
	r.clock = 0
	r.seen = map[uint64]bool{}
	r.shadow = &refShadow{cap: r.sets * r.ways}
	r.evictedBy = map[uint64]int{}
	r.stats = cache.Stats{}
}

// Access implements cache.Sim with the semantics of Cache.Access in
// write-through mode (the only mode Spec can express).
func (r *refAssoc) Access(a cache.Access) cache.Result {
	r.clock++
	r.stats.Accesses++
	if a.Write {
		r.stats.Writes++
		if r.countMemWrites {
			r.stats.MemoryWrites++
		}
	} else {
		r.stats.Reads++
	}

	line := a.Addr / refWordBytes
	set := r.index(line)

	firstRef := !r.seen[line]
	r.seen[line] = true
	shadowHit := r.shadow.touch(line)

	for slot, e := range r.frames[set] {
		if e.line == line {
			e.lastUse = r.clock
			r.stats.Hits++
			return cache.Result{Hit: true, Set: set, Way: slot}
		}
	}

	r.stats.Misses++
	res := cache.Result{Set: set}
	r.classify(&res, a, line, firstRef, shadowHit)

	slot := r.pickVictim(set)
	if e, ok := r.frames[set][slot]; ok {
		res.Evicted = true
		res.EvictedLine = e.line
		r.stats.Evictions++
		r.evictedBy[e.line] = a.Stream
	}
	r.frames[set][slot] = &refEntry{line: line, lastUse: r.clock, filled: r.clock}
	res.Way = slot
	return res
}

// classify assigns the 3C kind and interference attribution exactly as
// the fast simulators do: first reference → compulsory; present in the
// equal-capacity fully-associative shadow → conflict (attributed to the
// stream that last evicted the line); otherwise capacity.
func (r *refAssoc) classify(res *cache.Result, a cache.Access, line uint64, firstRef, shadowHit bool) {
	switch {
	case firstRef:
		res.Kind = cache.MissCompulsory
		r.stats.Compulsory++
	case shadowHit:
		res.Kind = cache.MissConflict
		r.stats.Conflict++
		if evictor, ok := r.evictedBy[line]; ok && a.Stream != cache.StreamNone && evictor != cache.StreamNone {
			if evictor == a.Stream {
				res.SelfInterference = true
				r.stats.SelfInterference++
			} else {
				res.CrossInterference = true
				r.stats.CrossInterference++
			}
		}
	default:
		res.Kind = cache.MissCapacity
		r.stats.Capacity++
	}
}

// pickVictim mirrors the fast cache's choice: the lowest-numbered free
// way slot, else the policy's pick. Timestamps are globally unique (one
// clock tick per access), so the LRU/FIFO minima are unambiguous.
func (r *refAssoc) pickVictim(set int) int {
	occ := r.frames[set]
	for slot := 0; slot < r.ways; slot++ {
		if _, ok := occ[slot]; !ok {
			return slot
		}
	}
	switch r.policy {
	case cache.FIFO:
		best := 0
		for slot := 1; slot < r.ways; slot++ {
			if occ[slot].filled < occ[best].filled {
				best = slot
			}
		}
		return best
	case cache.Random:
		return r.rng.Intn(r.ways)
	default: // LRU
		best := 0
		for slot := 1; slot < r.ways; slot++ {
			if occ[slot].lastUse < occ[best].lastUse {
				best = slot
			}
		}
		return best
	}
}

// Stats implements cache.Sim.
func (r *refAssoc) Stats() cache.Stats { return r.stats }

// Describe implements cache.Sim.
func (r *refAssoc) Describe() string { return r.desc }

// Flush implements cache.Sim: contents, statistics, and classification
// history are cleared; the Random-policy source keeps its state, as in
// the fast cache.
func (r *refAssoc) Flush() { r.resetState() }

// refSkewed is the reference mirror of cache.SkewedCache: two ways of
// 2^c sets, each indexed by a different hash of the line address.
type refSkewed struct {
	sets int // per way
	c    uint

	ways  [2][]*refEntry
	clock uint64

	seen      map[uint64]bool
	shadow    *refShadow
	evictedBy map[uint64]int
	stats     cache.Stats
}

func newRefSkewed(lines int) (*refSkewed, error) {
	if lines < 4 || lines&(lines-1) != 0 {
		return nil, fmt.Errorf("oracle: skewed reference needs power-of-two lines ≥ 4, got %d", lines)
	}
	sets := lines / 2
	c := uint(0)
	for 1<<c < sets {
		c++
	}
	s := &refSkewed{sets: sets, c: c}
	s.reset()
	return s, nil
}

func (s *refSkewed) reset() {
	s.ways[0] = make([]*refEntry, s.sets)
	s.ways[1] = make([]*refEntry, s.sets)
	s.clock = 0
	s.seen = map[uint64]bool{}
	s.shadow = &refShadow{cap: 2 * s.sets}
	s.evictedBy = map[uint64]int{}
	s.stats = cache.Stats{}
}

// hash mirrors SkewedCache.hash with division arithmetic: way 0 is
// low ⊕ mid, way 1 rotates mid left by one bit within c bits first.
func (s *refSkewed) hash(w int, line uint64) int {
	n := uint64(s.sets)
	low := line % n
	mid := (line / n) % n
	if w == 1 {
		mid = (mid*2)%n + mid/(n/2)
	}
	return int(low ^ mid)
}

// Access implements cache.Sim with SkewedCache.Access semantics (note:
// the skewed simulator does not track write-through memory traffic).
func (s *refSkewed) Access(a cache.Access) cache.Result {
	s.clock++
	s.stats.Accesses++
	if a.Write {
		s.stats.Writes++
	} else {
		s.stats.Reads++
	}
	line := a.Addr / refWordBytes

	firstRef := !s.seen[line]
	s.seen[line] = true
	shadowHit := s.shadow.touch(line)

	idx := [2]int{s.hash(0, line), s.hash(1, line)}
	for w := 0; w < 2; w++ {
		if e := s.ways[w][idx[w]]; e != nil && e.line == line {
			e.lastUse = s.clock
			s.stats.Hits++
			return cache.Result{Hit: true, Set: idx[w], Way: w}
		}
	}

	s.stats.Misses++
	res := cache.Result{}
	switch {
	case firstRef:
		res.Kind = cache.MissCompulsory
		s.stats.Compulsory++
	case shadowHit:
		res.Kind = cache.MissConflict
		s.stats.Conflict++
		if evictor, ok := s.evictedBy[line]; ok && a.Stream != cache.StreamNone && evictor != cache.StreamNone {
			if evictor == a.Stream {
				res.SelfInterference = true
				s.stats.SelfInterference++
			} else {
				res.CrossInterference = true
				s.stats.CrossInterference++
			}
		}
	default:
		res.Kind = cache.MissCapacity
		s.stats.Capacity++
	}

	w := 0
	switch {
	case s.ways[0][idx[0]] == nil:
		w = 0
	case s.ways[1][idx[1]] == nil:
		w = 1
	case s.ways[1][idx[1]].lastUse < s.ways[0][idx[0]].lastUse:
		w = 1
	}
	if victim := s.ways[w][idx[w]]; victim != nil {
		res.Evicted = true
		res.EvictedLine = victim.line
		s.stats.Evictions++
		s.evictedBy[victim.line] = a.Stream
	}
	s.ways[w][idx[w]] = &refEntry{line: line, lastUse: s.clock, filled: s.clock}
	res.Set, res.Way = idx[w], w
	return res
}

// Stats implements cache.Sim.
func (s *refSkewed) Stats() cache.Stats { return s.stats }

// Describe implements cache.Sim.
func (s *refSkewed) Describe() string {
	return fmt.Sprintf("ref skewed 2-way %d sets", s.sets)
}

// Flush implements cache.Sim.
func (s *refSkewed) Flush() { s.reset() }

// refVictim is the reference mirror of cache.VictimCache: a direct-
// mapped reference cache backed by a small fully-associative buffer
// kept as a plain slice.
type refVictim struct {
	main   *refAssoc
	buf    []*refEntry
	clock  uint64
	hits   uint64
	misses uint64
}

func newRefVictim(lines, bufLines int) (*refVictim, error) {
	if bufLines < 1 {
		return nil, fmt.Errorf("oracle: victim buffer needs at least 1 line, got %d", bufLines)
	}
	main, err := newRefAssoc(cache.Spec{Kind: "direct", Lines: lines}.Normalize(),
		plainModIndex(lines), lines, 1, cache.LRU, true)
	if err != nil {
		return nil, err
	}
	return &refVictim{main: main, buf: make([]*refEntry, bufLines)}, nil
}

// Access implements cache.Sim with VictimCache.Access semantics: main
// array first; an evicted line parks in the buffer; a buffer hit counts
// as a swap hit and reports the combined outcome.
func (v *refVictim) Access(a cache.Access) cache.Result {
	v.clock++
	line := a.Addr / refWordBytes
	r := v.main.Access(a)
	if r.Hit {
		return r
	}
	if r.Evicted {
		v.insert(r.EvictedLine)
	}
	for i, e := range v.buf {
		if e != nil && e.line == line {
			v.buf[i] = nil
			v.hits++
			r.Hit = true
			r.Kind = cache.MissNone
			return r
		}
	}
	v.misses++
	return r
}

// insert mirrors VictimCache.insert: the first invalid buffer slot, else
// the least-recently-inserted entry (insertion timestamps are unique).
func (v *refVictim) insert(line uint64) {
	victim := 0
	for i, e := range v.buf {
		if e == nil {
			victim = i
			break
		}
		if e.lastUse < v.buf[victim].lastUse {
			victim = i
		}
	}
	v.buf[victim] = &refEntry{line: line, lastUse: v.clock}
}

// Stats implements cache.Sim: like the fast victim cache, it reports the
// main array's counters (swap hits are main-array misses).
func (v *refVictim) Stats() cache.Stats { return v.main.Stats() }

// VictimStats mirrors VictimCache.VictimStats for the two-level view.
func (v *refVictim) VictimStats() cache.VictimStats {
	return cache.VictimStats{SwapHits: v.hits, TrueMisses: v.misses}
}

// Describe implements cache.Sim.
func (v *refVictim) Describe() string {
	return fmt.Sprintf("ref direct %d lines + %d-entry victim buffer", v.main.sets, len(v.buf))
}

// Flush implements cache.Sim.
func (v *refVictim) Flush() {
	v.main.Flush()
	for i := range v.buf {
		v.buf[i] = nil
	}
	v.clock = 0
	v.hits = 0
	v.misses = 0
}
