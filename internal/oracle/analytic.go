package oracle

import (
	"fmt"
	"math/rand"

	"primecache/internal/cache"
	"primecache/internal/trace"
)

// VerifyStridedAnalytic replays passes passes of the strided sweep on a
// freshly built spec cache and compares the accumulated statistics
// against the closed form of cache.StridedSweepStats. It returns an
// error when the model declines the sweep or when any counter differs;
// nil means the closed form is exact for this instance. The vcached
// server uses this as its admission guard before trusting the analytic
// path for a large job, and the property suite runs it across stride
// classes.
func VerifyStridedAnalytic(spec cache.Spec, startWord uint64, strideWords int64, n, passes, stream int) error {
	want, ok := cache.StridedSweepStats(spec, startWord, strideWords, n, passes, stream)
	if !ok {
		return fmt.Errorf("oracle: analytic model rejected sweep spec=%s start=%d stride=%d n=%d passes=%d",
			spec, startWord, strideWords, n, passes)
	}
	sim, err := spec.Build()
	if err != nil {
		return fmt.Errorf("oracle: building %s: %v", spec, err)
	}
	tr := trace.Strided(startWord, strideWords, n, stream)
	for p := 0; p < passes; p++ {
		trace.Replay(sim, tr)
	}
	if got := sim.Stats(); got != want {
		return fmt.Errorf("oracle: analytic sweep mismatch spec=%s start=%d stride=%d n=%d passes=%d stream=%d:\n  replay   %v\n  analytic %v",
			spec, startWord, strideWords, n, passes, stream, got, want)
	}
	return nil
}

// stridedAnalyticProperty cross-checks the closed-form strided-sweep
// statistics against trace-driven replay over randomized organisations
// and the stride classes the paper cares about: unit, power-of-two
// (the pathological direct-mapped case), multiples of C and near-C
// (degenerate one-set orbits), and arbitrary positive/negative strides.
func stridedAnalyticProperty() Property {
	return Property{
		Name:      "strided-analytic-equals-replay",
		Statement: "closed-form strided-sweep statistics equal trace-driven replay for prime- and direct-mapped caches across stride classes and pass counts",
		Check: func(rng *rand.Rand) error {
			var spec cache.Spec
			var C int64
			if rng.Intn(2) == 0 {
				c := []uint{3, 5, 7, 13}[rng.Intn(4)]
				spec = cache.Spec{Kind: "prime", C: c}
				C = int64(1)<<c - 1
			} else {
				L := []int{16, 64, 256, 1024}[rng.Intn(4)]
				spec = cache.Spec{Kind: "direct", Lines: L}
				C = int64(L)
			}
			var s int64
			switch rng.Intn(6) {
			case 0:
				s = 1
			case 1:
				s = int64(1) << uint(rng.Intn(14)) // power of two
			case 2:
				s = C * int64(1+rng.Intn(4)) // multiple of C: one-set orbit
			case 3:
				s = C*int64(1+rng.Intn(3)) + int64(rng.Intn(3)) - 1 // C·k ± 1
			case 4:
				s = int64(1 + rng.Intn(1<<12))
			case 5:
				s = -int64(1 + rng.Intn(1<<12))
			}
			if s == 0 {
				s = 1
			}
			maxN := int(2*C) + 3 // cover n < o, n ≤ C, and n > C regimes
			if maxN > 4096 {
				maxN = 4096 // keep the big c=13 rounds cheap
			}
			n := 1 + rng.Intn(maxN)
			passes := 1 + rng.Intn(3)
			start := uint64(rng.Intn(1 << 20))
			if s < 0 {
				// Keep the address accumulator nonnegative, as real
				// backwards sweeps over allocated arrays do.
				start += uint64(int64(n) * -s)
			}
			stream := 1 + rng.Intn(2)
			return VerifyStridedAnalytic(spec, start, s, n, passes, stream)
		},
	}
}
