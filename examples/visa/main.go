// Vector-ISA example: assemble a strip-mined DAXPY and a strided
// reduction for the paper's machine models and execute them on three
// configurations — no cache, direct-mapped cache, prime-mapped cache —
// with the instruction-level simulator (internal/visa). The numeric
// results are identical; only the cycle counts differ.
package main

import (
	"fmt"
	"log"

	"primecache/internal/vcm"
	"primecache/internal/visa"
)

func main() {
	const (
		n       = 2048
		stride  = 512 // power-of-two: the conventional cache's worst case
		reps    = 4
		memSize = stride*n + 1
	)

	// A strided re-reduction: sum the same stride-512 vector four times.
	prog := func() visa.Program {
		var a visa.Assembler
		a.LoadA(1, stride)
		a.LoadS(1, 0)
		for r := 0; r < reps; r++ {
			a.LoadA(0, 0)
			for done := 0; done < n; done += 64 {
				a.SetVL(64)
				a.LoadV(0, 0, 1)
				a.SumV(2, 0)
				a.AddSS(1, 1, 2)
				a.AddA(0, 64*stride)
			}
		}
		return a.Program()
	}()

	dg, pg := vcm.DirectGeom(13), vcm.PrimeGeom(13)
	configs := []struct {
		name string
		geom *vcm.CacheGeom
	}{
		{"MM-model (no cache)", nil},
		{"CC-model direct 8192", &dg},
		{"CC-model prime 8191", &pg},
	}

	fmt.Printf("strided re-reduction: %d elements × stride %d × %d passes (t_m = 32)\n\n", n, stride, reps)
	var baseline int64
	for _, cfg := range configs {
		cpu, err := visa.New(visa.Config{
			Mach:      vcm.DefaultMachine(64, 32),
			MemWords:  memSize,
			CacheGeom: cfg.geom,
		})
		if err != nil {
			log.Fatal(err)
		}
		for i := 0; i < n; i++ {
			cpu.Mem()[i*stride] = float64(i % 9)
		}
		if err := cpu.Run(prog); err != nil {
			log.Fatal(err)
		}
		cy := cpu.Cycles()
		if baseline == 0 {
			baseline = cy
		}
		extra := ""
		if cfg.geom != nil {
			s := cpu.CacheStats()
			extra = fmt.Sprintf("  cache hit%% %5.1f", 100*s.HitRatio())
		}
		fmt.Printf("%-24s sum=%8.0f  cycles %9d  speedup %5.2fx%s\n",
			cfg.name, cpu.Scalar(1), cy, float64(baseline)/float64(cy), extra)
	}

	// DAXPY with the library-provided assembler macro.
	fmt.Printf("\nDAXPY y ← 2.5·x + y, %d elements, unit strides:\n", 4096)
	cpu, err := visa.New(visa.Config{Mach: vcm.DefaultMachine(64, 32), MemWords: 1 << 16})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		cpu.Mem()[i] = 1
		cpu.Mem()[32768+i] = float64(i)
	}
	if err := cpu.Run(visa.DAXPY(2.5, 0, 32768, 1, 1, 4096, 64)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  y[7] = %.1f (want 9.5), cycles %d\n", cpu.Mem()[32768+7], cpu.Cycles())
}
