// Blocked FFT (the paper's §4 FFT access pattern): run the real four-step
// Cooley–Tukey transform of 16 K points through direct- and prime-mapped
// caches and compare interference misses, then evaluate the analytic FFT
// model across blocking factors, reproducing the ≥2× improvement of the
// paper's FFT figure.
package main

import (
	"fmt"
	"log"
	"math/cmplx"
	"math/rand"

	"primecache"
	"primecache/internal/vcm"
)

func main() {
	const b1, b2 = 128, 128 // N = 16384 > cache, the interesting regime
	rng := rand.New(rand.NewSource(7))
	input := make([]complex128, b1*b2)
	for i := range input {
		input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	fmt.Printf("four-step FFT, N = %d = %d×%d (row stride %d)\n\n", b1*b2, b1, b2, b2)
	var outputs [][]complex128
	for _, c := range []struct {
		name string
		mk   func() (*primecache.VectorCache, error)
	}{
		{"direct-mapped (8192 lines)", func() (*primecache.VectorCache, error) { return primecache.NewDirectCache(8192) }},
		{"prime-mapped (8191 lines)", func() (*primecache.VectorCache, error) { return primecache.NewPrimeCache(13) }},
	} {
		vc, err := c.mk()
		if err != nil {
			log.Fatal(err)
		}
		x := make([]complex128, len(input))
		copy(x, input)
		if err := primecache.FFT2D(x, b1, b2, 0, vc.Cache()); err != nil {
			log.Fatal(err)
		}
		outputs = append(outputs, x)
		s := vc.Stats()
		fmt.Printf("%-28s miss%% %6.2f  conflicts %7d\n", c.name, 100*s.MissRatio(), s.Conflict)
	}
	// Same transform either way: the mapping affects timing, never values.
	var maxDiff float64
	for i := range outputs[0] {
		if d := cmplx.Abs(outputs[0][i] - outputs[1][i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |direct−prime| over outputs: %.1e (identical computation)\n\n", maxDiff)

	fmt.Println("analytic FFT model, N = 2^20, cycles per point:")
	m := primecache.DefaultMachine(64, 32)
	fmt.Printf("  %6s  %10s  %10s  %7s\n", "B2", "direct", "prime", "speedup")
	for bb2 := 256; bb2 <= 4096; bb2 *= 2 {
		plan := vcm.FFTPlan{N: 1 << 20, B1: (1 << 20) / bb2, B2: bb2}
		d := vcm.FFTCyclesPerPoint(vcm.DirectGeom(13), m, plan)
		p := vcm.FFTCyclesPerPoint(vcm.PrimeGeom(13), m, plan)
		fmt.Printf("  %6d  %10.2f  %10.2f  %6.2fx\n", bb2, d, p, d/p)
	}
}
