package main

// Example-based test: the traced four-step FFT must compute the same
// transform as the untraced run (mapping affects timing, never values),
// and the prime cache must beat the direct cache on conflicts for the
// example's out-of-cache transform size.

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"primecache"
)

func TestFFT2DTracedMatchesUntraced(t *testing.T) {
	const b1, b2 = 32, 32
	rng := rand.New(rand.NewSource(3))
	input := make([]complex128, b1*b2)
	for i := range input {
		input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}

	traced := make([]complex128, len(input))
	copy(traced, input)
	vc, err := primecache.NewPrimeCache(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := primecache.FFT2D(traced, b1, b2, 0, vc.Cache()); err != nil {
		t.Fatal(err)
	}
	if vc.Stats().Accesses == 0 {
		t.Error("traced FFT recorded no cache accesses")
	}

	plain := make([]complex128, len(input))
	copy(plain, input)
	if err := primecache.FFT2D(plain, b1, b2, 0, nil); err != nil {
		t.Fatal(err)
	}

	for i := range traced {
		if d := cmplx.Abs(traced[i] - plain[i]); d > 1e-9 {
			t.Fatalf("output %d differs between traced and untraced run by %g", i, d)
		}
	}
}

func TestFFTPrimeBeatsDirectOnConflicts(t *testing.T) {
	const b1, b2 = 128, 128 // N = 16384 > 8192 lines, the example's regime
	rng := rand.New(rand.NewSource(7))
	input := make([]complex128, b1*b2)
	for i := range input {
		input[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	conflicts := map[string]uint64{}
	for name, mk := range map[string]func() (*primecache.VectorCache, error){
		"direct": func() (*primecache.VectorCache, error) { return primecache.NewDirectCache(8192) },
		"prime":  func() (*primecache.VectorCache, error) { return primecache.NewPrimeCache(13) },
	} {
		vc, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		x := make([]complex128, len(input))
		copy(x, input)
		if err := primecache.FFT2D(x, b1, b2, 0, vc.Cache()); err != nil {
			t.Fatal(err)
		}
		conflicts[name] = vc.Stats().Conflict
	}
	if conflicts["prime"] >= conflicts["direct"] {
		t.Errorf("prime conflicts (%d) not below direct (%d)", conflicts["prime"], conflicts["direct"])
	}
}
