// Trace → model calibration workflow: generate the canonical trace of a
// VCM operating point, replay it through both cache organisations, fit
// the VCM parameters back from the raw trace, and evaluate the analytic
// model at the fitted point — closing the loop between measurement and
// model the way a performance engineer would on a real machine.
package main

import (
	"fmt"
	"log"
	"os"

	"primecache/internal/cache"
	"primecache/internal/stats"
	"primecache/internal/trace"
	"primecache/internal/vcm"
)

func main() {
	// The "measured program": B = 2048 elements at stride 512, re-used 8
	// times, with a quarter-length unit-stride second stream.
	truth := vcm.VCM{B: 2048, R: 8, Pds: 0.25, P1S1: 0, P1S2: 1}
	tr, err := trace.FromVCM(truth, 512, 1, 0, 3_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %d references\n\n", len(tr))

	// Replay through both caches.
	direct, _ := cache.NewDirect(8192)
	prime, _ := cache.NewPrime(13)
	ds := trace.Replay(direct, tr)
	ps := trace.Replay(prime, tr)
	fmt.Printf("replay:  direct miss%% %.1f (conflicts %d)   prime miss%% %.1f (conflicts %d)\n\n",
		100*ds.MissRatio(), ds.Conflict, 100*ps.MissRatio(), ps.Conflict)

	// Fit the workload model back from the trace alone.
	fitted, err := trace.FitVCM(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fitted VCM: B=%d R=%d Pds=%.3f P1(s1)=%.2f P1(s2)=%.2f\n", fitted.B, fitted.R, fitted.Pds, fitted.P1S1, fitted.P1S2)
	fmt.Printf("truth:      B=%d R=%d Pds=%.3f P1(s1)=%.2f P1(s2)=%.2f\n\n", truth.B, truth.R, truth.Pds, truth.P1S1, truth.P1S2)

	// Stride mix of the dominant stream.
	prof := trace.Profile(tr)[0]
	h := stats.NewHistogram()
	for s, n := range prof.StrideHist {
		h.ObserveN(s, n)
	}
	fmt.Println("stream-1 stride histogram:")
	if err := h.Render(os.Stdout, 3, 30); err != nil {
		log.Fatal(err)
	}

	// Evaluate the analytic model at the fitted point.
	mach := vcm.DefaultMachine(64, 32)
	const n = 1 << 20
	fmt.Printf("\nanalytic model at the fitted point (M=64, t_m=32):\n")
	fmt.Printf("  MM        %6.2f cycles/result\n", vcm.CyclesPerResultMM(mach, fitted, n))
	fmt.Printf("  CC-direct %6.2f\n", vcm.CyclesPerResultCC(vcm.DirectGeom(13), mach, fitted, n))
	fmt.Printf("  CC-prime  %6.2f\n", vcm.CyclesPerResultCC(vcm.PrimeGeom(13), mach, fitted, n))
}
