// Row / column / diagonal sweeps of a matrix — the paper's §1 motivating
// impossibility: row access needs stride P, the major diagonal needs
// stride P+1, and "it is not possible to make both row access and major
// diagonal access efficient" in any power-of-two cache, because one stride
// or the other shares a factor with the set count. The prime-mapped cache
// handles all three.
package main

import (
	"fmt"
	"log"

	"primecache"
)

const (
	p      = 256 // leading dimension: rows stride 256, diagonal 257
	sweeps = 3
	n      = 512 // elements per sweep
)

func main() {
	patterns := []struct {
		name   string
		stride int64
	}{
		{"column (stride 1)", 1},
		{fmt.Sprintf("row (stride P=%d)", p), p},
		{fmt.Sprintf("diagonal (stride P+1=%d)", p+1), p + 1},
	}

	fmt.Printf("%-24s %28s %28s\n", "", "direct-mapped 8192", "prime-mapped 8191")
	fmt.Printf("%-24s %14s %13s %14s %13s\n", "pattern", "hit%", "conflicts", "hit%", "conflicts")
	for _, pat := range patterns {
		direct, err := primecache.NewDirectCache(8192)
		if err != nil {
			log.Fatal(err)
		}
		prime, err := primecache.NewPrimeCache(13)
		if err != nil {
			log.Fatal(err)
		}
		for s := 0; s < sweeps; s++ {
			if _, err := direct.LoadVector(0, pat.stride, n, 1); err != nil {
				log.Fatal(err)
			}
			if _, err := prime.LoadVector(0, pat.stride, n, 1); err != nil {
				log.Fatal(err)
			}
		}
		ds, ps := direct.Stats(), prime.Stats()
		fmt.Printf("%-24s %13.2f%% %13d %13.2f%% %13d\n",
			pat.name, 100*ds.HitRatio(), ds.Conflict, 100*ps.HitRatio(), ps.Conflict)
	}

	fmt.Println("\nThe direct-mapped cache cannot serve rows and diagonals well at once:")
	fmt.Println("stride 256 folds 512 elements onto 32 sets (conflicts), while stride 257")
	fmt.Println("is coprime to 8192 and behaves. Swap the leading dimension to 255 and the")
	fmt.Println("roles swap — the prime-mapped cache is conflict-free for all of them.")
}
