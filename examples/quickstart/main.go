// Quickstart: build the paper's prime-mapped vector cache and a
// direct-mapped cache of the same size, sweep a vector with a
// power-of-two stride (the worst case for conventional caches), and
// compare interference misses and the analytic performance model.
package main

import (
	"fmt"
	"log"

	"primecache"
)

func main() {
	const (
		stride = 512  // power-of-two stride: folds onto 16 lines direct-mapped
		n      = 4096 // vector length, half the cache
		passes = 4    // reuse sweeps
	)

	prime, err := primecache.NewPrimeCache(13) // 8191 lines
	if err != nil {
		log.Fatal(err)
	}
	direct, err := primecache.NewDirectCache(8192)
	if err != nil {
		log.Fatal(err)
	}

	for pass := 0; pass < passes; pass++ {
		if _, err := prime.LoadVector(0, stride, n, 1); err != nil {
			log.Fatal(err)
		}
		if _, err := direct.LoadVector(0, stride, n, 1); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("stride-%d sweep of %d elements × %d passes\n\n", stride, n, passes)
	for _, c := range []struct {
		name string
		vc   *primecache.VectorCache
	}{{"prime-mapped (8191 lines)", prime}, {"direct-mapped (8192 lines)", direct}} {
		s := c.vc.Stats()
		fmt.Printf("%-28s hit%% %6.2f  conflicts %6d  (self %d, cross %d)\n",
			c.name, 100*s.HitRatio(), s.Conflict, s.SelfInterference, s.CrossInterference)
	}
	fmt.Printf("\nprime-mapped adder cost: %d c-bit end-around additions (≈1 per element)\n\n",
		prime.AdderSteps())

	// The analytic model's view of the same design point.
	m := primecache.DefaultMachine(64, 32)
	w := primecache.DefaultWorkload(n)
	const total = 1 << 20
	fmt.Println("analytic cycles/result at M=64, t_m=32, B=4K (random strides):")
	fmt.Printf("  no cache      %5.2f\n", primecache.CyclesPerResultMM(m, w, total))
	fmt.Printf("  direct-mapped %5.2f\n", primecache.CyclesPerResultCC(primecache.DirectGeometry(13), m, w, total))
	fmt.Printf("  prime-mapped  %5.2f\n", primecache.CyclesPerResultCC(primecache.PrimeGeometry(13), m, w, total))

	// The same two evaluations are served by the long-running daemon —
	// start `go run ./cmd/vcached` and try:
	//
	//	curl -s localhost:8372/v1/model -d '{"banks":64,"tm":32,"b":4096}'
	//	curl -s localhost:8372/v1/simulate -d '{
	//	  "cache":   {"kind": "prime", "c": 13},
	//	  "pattern": {"name": "strided", "stride": 512, "n": 4096},
	//	  "passes":  4}'
	//
	// See TUTORIAL.md §7 for sweeps, memoization, and /v1/stats.
	fmt.Println("\n(long-running form: `go run ./cmd/vcached`, then curl /v1/model — TUTORIAL.md §7)")
}
