package main

// Example-based test: exercises exactly the public API the quickstart
// walks through, so `go test ./...` both compiles the example and pins
// the paper's headline behaviour it demonstrates.

import (
	"math"
	"testing"

	"primecache"
)

func TestQuickstartScenario(t *testing.T) {
	const (
		stride = 512
		n      = 4096
		passes = 4
	)
	prime, err := primecache.NewPrimeCache(13)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := primecache.NewDirectCache(8192)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < passes; pass++ {
		if _, err := prime.LoadVector(0, stride, n, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := direct.LoadVector(0, stride, n, 1); err != nil {
			t.Fatal(err)
		}
	}

	ps, ds := prime.Stats(), direct.Stats()
	// The paper's point: the prime cache sweeps stride-512 conflict-free
	// while the direct cache folds 4096 elements onto 16 lines.
	if ps.Conflict != 0 {
		t.Errorf("prime cache saw %d conflict misses on a stride-%d sweep, want 0", ps.Conflict, stride)
	}
	if ds.Conflict == 0 {
		t.Error("direct cache saw no conflict misses on a power-of-two stride")
	}
	if ps.HitRatio() <= ds.HitRatio() {
		t.Errorf("prime hit ratio %.4f not above direct %.4f", ps.HitRatio(), ds.HitRatio())
	}
	// Each element costs about one end-around addition in the Figure-1
	// address unit.
	if prime.AdderSteps() == 0 {
		t.Error("prime cache reports zero adder steps; address unit unused")
	}

	// The analytic model agrees qualitatively: prime-mapped beats the
	// no-cache machine and the direct-mapped machine at this design point.
	m := primecache.DefaultMachine(64, 32)
	w := primecache.DefaultWorkload(n)
	const total = 1 << 20
	mm := primecache.CyclesPerResultMM(m, w, total)
	dd := primecache.CyclesPerResultCC(primecache.DirectGeometry(13), m, w, total)
	pp := primecache.CyclesPerResultCC(primecache.PrimeGeometry(13), m, w, total)
	for name, v := range map[string]float64{"MM": mm, "direct CC": dd, "prime CC": pp} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			t.Errorf("%s cycles/result = %v, want finite positive", name, v)
		}
	}
	if pp >= mm {
		t.Errorf("prime-mapped cycles/result %.2f not below no-cache %.2f", pp, mm)
	}
	if pp >= dd {
		t.Errorf("prime-mapped cycles/result %.2f not below direct-mapped %.2f", pp, dd)
	}
}
