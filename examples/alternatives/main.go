// Alternatives shoot-out: every conflict-miss remedy the design space
// offered around 1992 — higher associativity (§2.1), bigger lines (§2.2),
// hardware prefetching (Fu & Patel), skewed XOR hashing, and the paper's
// prime mapping — run against the same strided workloads, plus the
// auto-blocking recommendation for a pathological leading dimension.
package main

import (
	"fmt"
	"log"

	"primecache"
)

const (
	n      = 4096
	passes = 3
)

type contender struct {
	name   string
	access func(addr uint64, stream int)
	stats  func() primecache.Stats
}

func main() {
	strides := []int64{1, 7, 512, 1024}

	fmt.Printf("%-26s", "miss% by stride:")
	for _, s := range strides {
		fmt.Printf(" %8d", s)
	}
	fmt.Println()

	for _, mk := range []func() contender{
		mkDirect, mkAssoc4, mkSeqPrefetch, mkStridePrefetch, mkSkewed, mkPrime,
	} {
		var name string
		ratios := make([]float64, 0, len(strides))
		for _, stride := range strides {
			c := mk()
			name = c.name
			for pass := 0; pass < passes; pass++ {
				a := int64(0)
				for i := 0; i < n; i++ {
					c.access(uint64(a), 1)
					a += stride
				}
			}
			ratios = append(ratios, 100*c.stats().MissRatio())
		}
		fmt.Printf("%-26s", name)
		for _, r := range ratios {
			fmt.Printf(" %7.1f%%", r)
		}
		fmt.Println()
	}

	// Auto-blocking advice for a leading dimension that is a multiple of
	// the direct-mapped cache size.
	const p = 3 * 8192
	fmt.Printf("\nblocking advice for leading dimension %d:\n", p)
	for _, g := range []struct {
		name string
		geom primecache.CacheGeometry
	}{
		{"direct 8192", primecache.DirectGeometry(13)},
		{"prime 8191", primecache.PrimeGeometry(13)},
	} {
		ch, err := primecache.ChooseBlocking(g.geom, p, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-12s b1=%-5d b2=%-5d conflict-free=%-5v utilization=%.3f\n",
			g.name, ch.B1, ch.B2, ch.ConflictFree, ch.Utilization)
	}
}

func cacheAccess(wordAddr uint64, stream int) primecache.Access {
	return primecache.Access{Addr: wordAddr * 8, Stream: stream}
}

func mkDirect() contender {
	vc, err := primecache.NewDirectCache(8192)
	if err != nil {
		log.Fatal(err)
	}
	return wrapVC("direct 8192", vc)
}

func mkAssoc4() contender {
	vc, err := primecache.NewSetAssocCache(8192, 4, primecache.LRU)
	if err != nil {
		log.Fatal(err)
	}
	return wrapVC("4-way LRU 8192", vc)
}

func mkPrime() contender {
	vc, err := primecache.NewPrimeCache(13)
	if err != nil {
		log.Fatal(err)
	}
	return wrapVC("prime 8191", vc)
}

func wrapVC(name string, vc *primecache.VectorCache) contender {
	return contender{
		name: name,
		access: func(addr uint64, stream int) {
			vc.Cache().Access(cacheAccess(addr, stream))
		},
		stats: vc.Stats,
	}
}

func mkSeqPrefetch() contender {
	p, err := primecache.NewPrefetchDirectCache(8192, primecache.PrefetchSequential, 2)
	if err != nil {
		log.Fatal(err)
	}
	return contender{
		name:   "direct + seq prefetch",
		access: func(addr uint64, stream int) { p.Access(cacheAccess(addr, stream)) },
		stats:  p.Stats,
	}
}

func mkStridePrefetch() contender {
	p, err := primecache.NewPrefetchDirectCache(8192, primecache.PrefetchStride, 2)
	if err != nil {
		log.Fatal(err)
	}
	return contender{
		name:   "direct + stride prefetch",
		access: func(addr uint64, stream int) { p.Access(cacheAccess(addr, stream)) },
		stats:  p.Stats,
	}
}

func mkSkewed() contender {
	s, err := primecache.NewSkewedCache(8192)
	if err != nil {
		log.Fatal(err)
	}
	return contender{
		name:   "2-way skewed 8192",
		access: func(addr uint64, stream int) { s.Access(cacheAccess(addr, stream)) },
		stats:  s.Stats,
	}
}
