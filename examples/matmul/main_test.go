package main

// Example-based test: a small traced blocked multiply must compute the
// same numbers as a naive untraced triple loop, and the §4 blocking
// advice must return a conflict-free tile for the example's pathological
// leading dimension.

import (
	"math"
	"math/rand"
	"testing"

	"primecache"
)

func TestBlockedMatMulMatchesNaive(t *testing.T) {
	const (
		r, k, c = 12, 9, 7
		ldim    = 40
		blk     = 4
	)
	rng := rand.New(rand.NewSource(1))
	a := primecache.NewMatrixLD(r, k, ldim, 0)
	b := primecache.NewMatrixLD(k, c, ldim, 1<<16)
	for i := range a.Data {
		a.Data[i] = rng.Float64()*2 - 1
	}
	for i := range b.Data {
		b.Data[i] = rng.Float64()*2 - 1
	}

	out := primecache.NewMatrixLD(r, c, ldim, 1<<20)
	vc, err := primecache.NewPrimeCache(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := primecache.BlockedMatMul(a, b, out, blk, vc.Cache()); err != nil {
		t.Fatal(err)
	}
	if vc.Stats().Accesses == 0 {
		t.Error("traced multiply recorded no cache accesses")
	}

	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			var want float64
			for x := 0; x < k; x++ {
				want += a.At(i, x) * b.At(x, j)
			}
			if got := out.At(i, j); math.Abs(got-want) > 1e-9 {
				t.Fatalf("out[%d][%d] = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestMaxConflictFreeBlockForExampleLD(t *testing.T) {
	const ld = 300 * 8192 // the example's pathological leading dimension
	b1, b2, err := primecache.MaxConflictFreeBlock(8191, ld)
	if err != nil {
		t.Fatal(err)
	}
	if b1 < 1 || b2 < 1 {
		t.Fatalf("degenerate block %dx%d", b1, b2)
	}
	if b1*b2 > 8191 {
		t.Fatalf("block %dx%d = %d words exceeds the 8191-line cache", b1, b2, b1*b2)
	}
	// A conflict-free block must actually be conflict-free when swept:
	// replay the sub-block pattern twice on the prime cache.
	vc, err := primecache.NewPrimeCache(13)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < b2; j++ {
			if _, err := vc.LoadVector(uint64(j*ld), 1, b1, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s := vc.Stats(); s.Conflict != 0 {
		t.Errorf("advised block %dx%d still causes %d conflict misses", b1, b2, s.Conflict)
	}
}
