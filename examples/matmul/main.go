// Blocked matrix multiply on tiles of a huge matrix (the Lam/Rothberg/Wolf
// workload the paper's introduction analyses): the leading dimension is a
// multiple of the direct-mapped cache size, so every tile column folds
// onto the same sets in a direct-mapped cache while the prime-mapped cache
// keeps them apart. The kernel also computes the real product, checked
// against a naive reference.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"primecache"
)

const (
	rows  = 64
	inner = 16
	cols  = 16
	// Leading dimension of the enclosing matrix: 300·8192 words, i.e. a
	// multiple of the direct cache size but ≡ 300 (mod 8191).
	ld  = 300 * 8192
	blk = 16
)

func main() {
	rng := rand.New(rand.NewSource(42))
	mk := func(r, c, ldim int, base uint64) *primecache.Matrix {
		m := primecache.NewMatrixLD(r, c, ldim, base)
		for i := range m.Data {
			m.Data[i] = rng.Float64()*2 - 1
		}
		return m
	}

	run := func(name string, mkCache func() (*primecache.VectorCache, error)) {
		a := mk(rows, inner, ld, 0)
		b := mk(inner, cols, inner, 1<<20)
		c := primecache.NewMatrixLD(rows, cols, ld, 1<<26+128)
		vc, err := mkCache()
		if err != nil {
			log.Fatal(err)
		}
		if err := primecache.BlockedMatMul(a, b, c, blk, vc.Cache()); err != nil {
			log.Fatal(err)
		}
		// Verify numerics against an untraced reference.
		ref := primecache.NewMatrixLD(rows, cols, ld, 0)
		a2, b2 := cloneMatrix(a), cloneMatrix(b)
		if err := primecache.BlockedMatMul(a2, b2, ref, rows, nil); err != nil {
			log.Fatal(err)
		}
		var maxErr float64
		for i := range c.Data {
			if d := math.Abs(c.Data[i] - ref.Data[i]); d > maxErr {
				maxErr = d
			}
		}
		s := vc.Stats()
		fmt.Printf("%-28s miss%% %6.2f  conflicts %7d (self %d, cross %d)  max numeric err %.1e\n",
			name, 100*s.MissRatio(), s.Conflict, s.SelfInterference, s.CrossInterference, maxErr)
	}

	fmt.Printf("blocked matmul: %d×%d · %d×%d tiles of a matrix with leading dimension %d words\n\n",
		rows, inner, inner, cols, ld)
	run("direct-mapped (8192 lines)", func() (*primecache.VectorCache, error) {
		return primecache.NewDirectCache(8192)
	})
	run("4-way set-assoc (8192)", func() (*primecache.VectorCache, error) {
		return primecache.NewSetAssocCache(8192, 4, primecache.LRU)
	})
	run("prime-mapped (8191 lines)", func() (*primecache.VectorCache, error) {
		return primecache.NewPrimeCache(13)
	})

	// §4 blocking advice for this leading dimension.
	b1, b2, err := primecache.MaxConflictFreeBlock(8191, ld)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n§4 maximal conflict-free sub-block for LD=%d: b1=%d, b2=%d (utilization %.3f)\n",
		ld, b1, b2, float64(b1*b2)/8191)
}

func cloneMatrix(m *primecache.Matrix) *primecache.Matrix {
	out := primecache.NewMatrixLD(m.Rows, m.Cols, m.LD, m.BaseWord)
	copy(out.Data, m.Data)
	return out
}
