# Development and CI entry points. `make ci` is the gate every PR must
# pass: vet, the full test suite, the concurrency-sensitive packages
# under the race detector, a fuzz smoke pass over every fuzz target, and
# a bounded differential-oracle campaign (see internal/oracle and
# TUTORIAL.md "Verifying the simulator").

GO ?= go

# Oracle campaign knobs: master seed, seeded traces per cache
# organisation, and maximum references per trace.
ORACLE_SEED   ?= 1
ORACLE_TRACES ?= 100
ORACLE_MAXREFS ?= 1024

# Per-target budget for the fuzz smoke pass.
FUZZTIME ?= 10s

# Seeded fault schedules per `make chaos` run (see internal/sim/chaos).
CHAOS_SCHEDULES ?= 50

.PHONY: build test vet race race-server cluster-test stress chaos persist-test bench bench-go bench-smoke oracle fuzz-smoke obs-test obscheck docs-check golden-update ci

build:
	$(GO) build ./...

# -shuffle=on randomizes test order within each package, so tests that
# secretly depend on a predecessor's side effects fail loudly; the seed
# is printed on failure for replay with -shuffle=<seed>.
test:
	$(GO) test -shuffle=on ./...

vet:
	$(GO) vet ./...

# The server and its daemon are the concurrent subsystems; always race
# them. `make race` runs the whole tree when time permits.
race-server:
	$(GO) test -race ./internal/server/... ./cmd/vcached/... ./internal/client/...

race:
	$(GO) test -race ./...

# The multi-node cluster suite (in-process 3-node deployments: ring
# routing, scatter-gather sweeps, mid-sweep failover, hedging, draining)
# always runs under the race detector — failover is all concurrency.
cluster-test:
	$(GO) test -race -count=1 ./internal/cluster/...

# Overload stress suite under the race detector: fault-injected shedding,
# organic 429 bursts, pressure-driven degradation, cancellation, and the
# error-envelope contract (see internal/server/overload_test.go).
stress:
	$(GO) test -race -count=1 -run 'Overload|Shed|Cancel|Degrad|Envelope|Partial' ./internal/server/... ./internal/client/...

# Benchmark-regression harness (see internal/bench and EXPERIMENTS.md
# "Performance tracking"): `make bench` measures the pinned scenario
# suite and writes a BENCH_*.json report; compare against the committed
# baseline with `go run ./cmd/primebench compare BENCH_0.json <report>`.
# `make bench-smoke` runs every scenario once (including the
# cluster/sweep-scatter 3-node scenario) — a cheap CI check that the
# suite itself still works.
BENCH_OUT ?= BENCH_local.json

bench:
	$(GO) run ./cmd/primebench bench -out $(BENCH_OUT)

bench-smoke:
	$(GO) run ./cmd/primebench bench -smoke > /dev/null

# The go-test microbenchmarks (single iteration, compile-and-run check).
bench-go:
	$(GO) test -bench=. -benchtime=1x -run=NONE ./...

# Bounded differential campaign: seeded traces through every cache
# organisation's fast simulator and its slow-but-obviously-correct
# reference, plus the metamorphic property suite. Exits non-zero on the
# first divergence, printing a minimised counterexample.
oracle:
	$(GO) run ./cmd/oracle -seed $(ORACLE_SEED) -n $(ORACLE_TRACES) -maxrefs $(ORACLE_MAXREFS)

# Deterministic cluster simulation: N seeded fault schedules (crashes,
# restarts, partitions, latency spikes, clock skew) against an
# in-process 3-node cluster, with invariants checked after every step
# — no lost jobs, oracle-identical results, memo locality, admission
# quiesce, no goroutine leaks. Violations print the seed; replay with
# Run(Options{Seed: <seed>}). See TUTORIAL.md "Reproducing a cluster
# failure from a seed".
chaos:
	CHAOS_SCHEDULES=$(CHAOS_SCHEDULES) $(GO) test -race -count=1 ./internal/sim/...

# Short randomized run of every fuzz target (go test allows one -fuzz
# pattern per invocation, hence one line per target).
fuzz-smoke:
	$(GO) test -run=NONE -fuzz=FuzzReduce -fuzztime=$(FUZZTIME) ./internal/mersenne/
	$(GO) test -run=NONE -fuzz=FuzzAddressUnit -fuzztime=$(FUZZTIME) ./internal/mersenne/
	$(GO) test -run=NONE -fuzz=FuzzModulusVsBigInt -fuzztime=$(FUZZTIME) ./internal/mersenne/
	$(GO) test -run=NONE -fuzz=FuzzCacheDifferential -fuzztime=$(FUZZTIME) ./internal/cache/
	$(GO) test -run=NONE -fuzz=FuzzSimVsReference -fuzztime=$(FUZZTIME) ./internal/cache/
	$(GO) test -run=NONE -fuzz=FuzzBankModelVsBruteForce -fuzztime=$(FUZZTIME) ./internal/membank/

# Observability suite: the tracing/exposition unit layer, the /metrics
# golden + quantile-vs-ladder property tests, and the end-to-end
# stitched-span-tree determinism checks — all under the race detector.
# obscheck is the span-policy lint: every route registration in the
# HTTP layers must go through a span-recording wrapper.
obs-test: obscheck
	$(GO) test -race -count=1 ./internal/obs/ ./cmd/obscheck/
	$(GO) test -race -count=1 -run 'Metrics|Traces|Trace|Quantile|Exposition' ./internal/server/ ./internal/cluster/

obscheck:
	$(GO) run ./cmd/obscheck

# Documentation lint: every mux route in the HTTP layers has an API.md
# entry, every intra-repo markdown link resolves, and every exported
# identifier in internal/cluster and internal/persist carries a doc
# comment (cmd/doccheck, plus its own tests).
docs-check:
	$(GO) run ./cmd/doccheck
	$(GO) test -count=1 ./cmd/doccheck/

# Durable memo-tier suite under the race detector: the persist store's
# own tests (log replay, torn tails, corrupt-record quarantine, segment
# rotation, compaction, snapshot restore), plus the warm-restart,
# conditional-GET, and stats-schema-2 contracts across the server,
# client, cluster, and chaos layers.
persist-test:
	$(GO) test -race -count=1 ./internal/persist/
	$(GO) test -race -count=1 -run 'Persist|Warm|ETag|Conditional|StatsV2|StatsSchema' ./internal/server/ ./internal/client/ ./internal/cluster/ ./internal/sim/chaos/

# Regenerate the golden files for the report renderers, the figures
# command, and the /metrics exposition after an intended output change.
golden-update:
	$(GO) test ./internal/report/ ./cmd/figures/ -update
	$(GO) test ./internal/server/ -run Golden -update

ci: vet build test race-server cluster-test stress chaos persist-test obs-test docs-check fuzz-smoke oracle bench-smoke
