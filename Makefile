# Development and CI entry points. `make ci` is the gate every PR must
# pass: vet, the full test suite, and the concurrency-sensitive packages
# under the race detector.

GO ?= go

.PHONY: build test vet race race-server bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The server and its daemon are the concurrent subsystems; always race
# them. `make race` runs the whole tree when time permits.
race-server:
	$(GO) test -race ./internal/server/... ./cmd/vcached/...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE ./...

ci: vet build test race-server
